#ifndef APPROXHADOOP_CORE_APPROX_JOB_H_
#define APPROXHADOOP_CORE_APPROX_JOB_H_

#include <memory>
#include <vector>

#include "core/approx_config.h"
#include "core/extreme_reducer.h"
#include "core/sampling_reducer.h"
#include "core/three_stage_reducer.h"
#include "hdfs/dataset.h"
#include "hdfs/namenode.h"
#include "mapreduce/job.h"
#include "sim/cluster.h"

namespace approxhadoop::obs {
struct Observability;
}  // namespace approxhadoop::obs

namespace approxhadoop::core {

/**
 * High-level entry point: assembles and runs approximation-enabled jobs.
 *
 * This is the analogue of the ApproxHadoop client interface — given a
 * mapper and a reduce operation it wires up the sampling input format,
 * the error-bounding reducers, and the controller matching the
 * ApproxConfig (user-specified ratios vs. target error bound), then runs
 * the job on the simulated cluster.
 */
class ApproxJobRunner
{
  public:
    ApproxJobRunner(sim::Cluster& cluster, const hdfs::BlockDataset& dataset,
                    hdfs::NameNode& namenode);

    /**
     * Runs an aggregation job (sum/count/average/ratio) with multi-stage
     * sampling error bounds.
     *
     * @param use_moments_combiner install the map-side MomentsCombiner
     *        (sound for kSum/kCount only); cuts shuffle volume without
     *        changing any estimate or bound
     */
    mr::JobResult runAggregation(mr::JobConfig config,
                                 const ApproxConfig& approx,
                                 mr::Job::MapperFactory mapper_factory,
                                 MultiStageSamplingReducer::Op op,
                                 bool use_moments_combiner = false);

    /**
     * Runs a three-stage sampling aggregation: population units are the
     * intermediate pairs the mapper pre-aggregated into unit records
     * (see core::ThreeStageEmitter). Only user-specified ratios are
     * supported; the online optimizer targets two-stage jobs.
     */
    mr::JobResult
    runThreeStageAggregation(mr::JobConfig config,
                             const ApproxConfig& approx,
                             mr::Job::MapperFactory mapper_factory,
                             ThreeStageSamplingReducer::Op op);

    /**
     * Runs a min/max job with GEV error bounds.
     *
     * @param minimum true for min, false for max
     * @param values_are_extremes true when each map emits a single
     *        per-task extreme (skips the Block Minima/Maxima transform)
     */
    mr::JobResult runExtreme(mr::JobConfig config, const ApproxConfig& approx,
                             mr::Job::MapperFactory mapper_factory,
                             bool minimum, bool values_are_extremes = true);

    /**
     * Runs a job whose mapper derives from UserDefinedApproxMapper;
     * approx.user_defined_fraction selects the mix of approximate tasks,
     * and sampling/dropping ratios apply as usual.
     */
    mr::JobResult runUserDefined(mr::JobConfig config,
                                 const ApproxConfig& approx,
                                 mr::Job::MapperFactory mapper_factory,
                                 mr::Job::ReducerFactory reducer_factory);

    /** Runs a fully precise baseline job (stock Hadoop behaviour). */
    mr::JobResult runPrecise(mr::JobConfig config,
                             mr::Job::MapperFactory mapper_factory,
                             mr::Job::ReducerFactory reducer_factory);

    /** True if the last target-mode run achieved its bound early. */
    bool lastTargetAchieved() const { return last_target_achieved_; }

    /**
     * Attaches an observability sink (trace recorder + metrics registry)
     * that every subsequently run job reports into. Not owned; must
     * outlive the run calls. Pass nullptr to detach. Strictly additive:
     * recording never changes scheduling, results, or error bounds.
     */
    void setObservability(obs::Observability* obs) { obs_ = obs; }

    /**
     * Attaches a journal epoch sink that every subsequently run job
     * seals its checkpoint epochs into (crash-consistent journaling;
     * see src/journal/). Not owned; must outlive the run calls. Pass
     * nullptr to detach. Like observability, strictly additive.
     */
    void setEpochSink(journal::EpochSink* sink) { epoch_sink_ = sink; }

  private:
    /**
     * Pre-creates @p count reducers so controllers can observe them, and
     * returns a factory that hands them to the job one by one.
     */
    template <typename ReducerT>
    static mr::Job::ReducerFactory
    makeSharedFactory(std::shared_ptr<std::vector<std::unique_ptr<ReducerT>>>
                          pool);

    sim::Cluster& cluster_;
    const hdfs::BlockDataset& dataset_;
    hdfs::NameNode& namenode_;
    bool last_target_achieved_ = false;
    obs::Observability* obs_ = nullptr;
    journal::EpochSink* epoch_sink_ = nullptr;
};

}  // namespace approxhadoop::core

#endif  // APPROXHADOOP_CORE_APPROX_JOB_H_
