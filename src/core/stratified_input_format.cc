#include "core/stratified_input_format.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "core/approx_input_format.h"

namespace approxhadoop::core {

StratifiedSampleIndex::StratifiedSampleIndex(
    const hdfs::BlockDataset& dataset, const KeyExtractor& extractor,
    uint64_t rare_threshold)
{
    // Pass 1: global key frequencies.
    std::unordered_map<std::string, uint64_t> frequency;
    std::vector<std::string> keys;
    for (uint64_t b = 0; b < dataset.numBlocks(); ++b) {
        for (uint64_t i = 0; i < dataset.itemsInBlock(b); ++i) {
            keys.clear();
            extractor(dataset.item(b, i), keys);
            for (const std::string& key : keys) {
                ++frequency[key];
            }
        }
    }
    for (const auto& [key, count] : frequency) {
        if (count <= rare_threshold) {
            ++rare_keys_;
        }
    }

    // Pass 2: pin every item that carries at least one rare key.
    must_include_.resize(dataset.numBlocks());
    for (uint64_t b = 0; b < dataset.numBlocks(); ++b) {
        for (uint64_t i = 0; i < dataset.itemsInBlock(b); ++i) {
            keys.clear();
            extractor(dataset.item(b, i), keys);
            for (const std::string& key : keys) {
                if (frequency[key] <= rare_threshold) {
                    must_include_[b].push_back(i);
                    ++pinned_items_;
                    break;
                }
            }
        }
    }
}

const std::vector<uint64_t>&
StratifiedSampleIndex::mustInclude(uint64_t block) const
{
    assert(block < must_include_.size());
    return must_include_[block];
}

StratifiedInputFormat::StratifiedInputFormat(
    std::shared_ptr<const StratifiedSampleIndex> index, uint64_t min_items)
    : index_(std::move(index)), min_items_(min_items)
{
    assert(index_ != nullptr);
}

std::vector<uint64_t>
StratifiedInputFormat::select(uint64_t block, uint64_t block_items,
                              double sampling_ratio, Rng& rng) const
{
    ApproxTextInputFormat uniform(min_items_);
    std::vector<uint64_t> sample =
        uniform.select(block, block_items, sampling_ratio, rng);
    const std::vector<uint64_t>& pinned = index_->mustInclude(block);
    if (pinned.empty()) {
        return sample;
    }
    // Merge-and-dedup the uniform sample with the pinned items.
    std::vector<uint64_t> merged;
    merged.reserve(sample.size() + pinned.size());
    std::merge(sample.begin(), sample.end(), pinned.begin(), pinned.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    return merged;
}

}  // namespace approxhadoop::core
