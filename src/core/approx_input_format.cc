#include "core/approx_input_format.h"

#include <algorithm>
#include <cmath>

namespace approxhadoop::core {

std::vector<uint64_t>
ApproxTextInputFormat::select(uint64_t /*block*/, uint64_t block_items,
                              double sampling_ratio, Rng& rng) const
{
    if (sampling_ratio >= 1.0) {
        std::vector<uint64_t> all(block_items);
        for (uint64_t i = 0; i < block_items; ++i) {
            all[i] = i;
        }
        return all;
    }
    uint64_t m = static_cast<uint64_t>(
        std::llround(sampling_ratio * static_cast<double>(block_items)));
    m = std::clamp<uint64_t>(m, std::min(min_items_, block_items),
                             block_items);
    std::vector<uint64_t> sample = rng.sampleWithoutReplacement(block_items,
                                                                m);
    std::sort(sample.begin(), sample.end());
    return sample;
}

}  // namespace approxhadoop::core
