#include "stats/two_stage.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "stats/moments.h"
#include "stats/student_t.h"

namespace approxhadoop::stats {

namespace {

/** tau_i = (M_i / m_i) * sum_i: the estimated total for one cluster. */
double
clusterTotal(const ClusterSample& c)
{
    if (c.units_sampled == 0) {
        return 0.0;
    }
    return static_cast<double>(c.units_total) /
           static_cast<double>(c.units_sampled) * c.sum;
}

}  // namespace

double
Estimate::relativeError() const
{
    if (value == 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    return error_bound / std::fabs(value);
}

double
TwoStageEstimator::sumVariance(const std::vector<ClusterSample>& clusters,
                               uint64_t total_clusters)
{
    size_t n = clusters.size();
    if (n < 2) {
        return std::numeric_limits<double>::infinity();
    }
    double nd = static_cast<double>(n);
    double big_n = static_cast<double>(total_clusters);

    RunningMoments cluster_totals;
    double within = 0.0;
    for (const ClusterSample& c : clusters) {
        cluster_totals.add(clusterTotal(c));
        if (c.units_sampled > 0 && c.units_sampled < c.units_total) {
            double mi = static_cast<double>(c.units_sampled);
            double big_m = static_cast<double>(c.units_total);
            double s2 = varianceWithImplicitZeros(c.units_sampled, c.sum,
                                                  c.sum_squares);
            within += big_m * (big_m - mi) * s2 / mi;
        }
    }
    double s2u = cluster_totals.variance();
    return big_n * (big_n - nd) * s2u / nd + (big_n / nd) * within;
}

Estimate
TwoStageEstimator::estimateSum(const std::vector<ClusterSample>& clusters,
                               uint64_t total_clusters, double confidence)
{
    Estimate est;
    est.confidence = confidence;
    est.clusters_sampled = clusters.size();

    size_t n = clusters.size();
    if (n == 0) {
        est.error_bound = std::numeric_limits<double>::infinity();
        est.variance = std::numeric_limits<double>::infinity();
        return est;
    }
    assert(n <= total_clusters);

    double sum_totals = 0.0;
    for (const ClusterSample& c : clusters) {
        sum_totals += clusterTotal(c);
    }
    double nd = static_cast<double>(n);
    double big_n = static_cast<double>(total_clusters);
    est.value = big_n / nd * sum_totals;

    if (n < 2) {
        // A single cluster gives a point estimate but no finite CI.
        est.variance = std::numeric_limits<double>::infinity();
        est.error_bound = std::numeric_limits<double>::infinity();
        return est;
    }
    est.variance = sumVariance(clusters, total_clusters);
    double t = studentTCritical(confidence, nd - 1.0);
    est.error_bound = t * std::sqrt(est.variance);
    return est;
}

Estimate
TwoStageEstimator::estimateCount(const std::vector<ClusterSample>& clusters,
                                 uint64_t total_clusters, double confidence)
{
    return estimateSum(clusters, total_clusters, confidence);
}

Estimate
TwoStageEstimator::estimateRatio(
    const std::vector<RatioClusterSample>& clusters, uint64_t total_clusters,
    double confidence)
{
    Estimate est;
    est.confidence = confidence;
    est.clusters_sampled = clusters.size();

    size_t n = clusters.size();
    if (n == 0) {
        est.error_bound = std::numeric_limits<double>::infinity();
        est.variance = std::numeric_limits<double>::infinity();
        return est;
    }

    double tau_y = 0.0;
    double tau_x = 0.0;
    for (const RatioClusterSample& c : clusters) {
        if (c.units_sampled == 0) {
            continue;
        }
        double scale = static_cast<double>(c.units_total) /
                       static_cast<double>(c.units_sampled);
        tau_y += scale * c.sum_y;
        tau_x += scale * c.sum_x;
    }
    if (tau_x == 0.0) {
        est.error_bound = std::numeric_limits<double>::infinity();
        est.variance = std::numeric_limits<double>::infinity();
        return est;
    }
    double r = tau_y / tau_x;
    est.value = r;

    if (n < 2) {
        est.variance = std::numeric_limits<double>::infinity();
        est.error_bound = std::numeric_limits<double>::infinity();
        return est;
    }

    // Linearization: run the residuals d_ij = y_ij - r * x_ij through the
    // two-stage sum variance. Residual moments expand as
    //   sum d      = sum_y - r sum_x
    //   sum d^2    = sum_y^2moment - 2 r sum_xy + r^2 sum_x^2moment
    std::vector<ClusterSample> residuals;
    residuals.reserve(n);
    for (const RatioClusterSample& c : clusters) {
        ClusterSample d;
        d.units_total = c.units_total;
        d.units_sampled = c.units_sampled;
        d.sum = c.sum_y - r * c.sum_x;
        d.sum_squares =
            c.sum_squares_y - 2.0 * r * c.sum_xy + r * r * c.sum_squares_x;
        if (d.sum_squares < 0.0) {
            d.sum_squares = 0.0;
        }
        residuals.push_back(d);
    }
    // sumVariance already returns the variance of the *population* residual
    // total, so the ratio variance just divides by the estimated
    // denominator total squared.
    double var_d = sumVariance(residuals, total_clusters);
    double nd = static_cast<double>(n);
    double big_n = static_cast<double>(total_clusters);
    double tau_x_hat = big_n / nd * tau_x;
    est.variance = var_d / (tau_x_hat * tau_x_hat);
    double t = studentTCritical(confidence, nd - 1.0);
    est.error_bound = t * std::sqrt(est.variance);
    return est;
}

Estimate
TwoStageEstimator::estimateAverage(const std::vector<ClusterSample>& clusters,
                                   uint64_t total_clusters, double confidence)
{
    std::vector<RatioClusterSample> ratio;
    ratio.reserve(clusters.size());
    for (const ClusterSample& c : clusters) {
        RatioClusterSample r;
        r.units_total = c.units_total;
        r.units_sampled = c.units_sampled;
        r.sum_y = c.sum;
        r.sum_squares_y = c.sum_squares;
        // x_ij = 1 for every sampled unit.
        r.sum_x = static_cast<double>(c.units_sampled);
        r.sum_squares_x = static_cast<double>(c.units_sampled);
        r.sum_xy = c.sum;
        ratio.push_back(r);
    }
    return estimateRatio(ratio, total_clusters, confidence);
}

}  // namespace approxhadoop::stats
