#ifndef APPROXHADOOP_STATS_STUDENT_T_H_
#define APPROXHADOOP_STATS_STUDENT_T_H_

namespace approxhadoop::stats {

/**
 * Regularized incomplete beta function I_x(a, b).
 *
 * Evaluated with the Lentz continued-fraction expansion (the classic
 * betacf scheme); accurate to ~1e-12 over the parameter ranges the t
 * distribution needs.
 *
 * @pre 0 <= x <= 1, a > 0, b > 0
 */
double incompleteBeta(double a, double b, double x);

/**
 * CDF of Student's t distribution with @p df degrees of freedom.
 *
 * @pre df > 0
 */
double studentTCdf(double t, double df);

/**
 * Quantile (inverse CDF) of Student's t distribution.
 *
 * This provides the t_{n-1, 1-alpha/2} multipliers in the paper's
 * Equation 2. Computed by monotone bisection on studentTCdf, which is
 * robust for all df >= 1 (including the heavy-tailed df = 1 and 2 cases
 * that appear when only a couple of map tasks have completed).
 *
 * @param p  probability in (0, 1)
 * @param df degrees of freedom (> 0)
 */
double studentTQuantile(double p, double df);

/**
 * Convenience: two-sided critical value t_{df, 1-alpha/2} for the given
 * confidence level (e.g., confidence = 0.95 gives t_{df, 0.975}).
 *
 * Returns +infinity when df < 1, matching the statistical reality that a
 * single sampled cluster admits no finite confidence interval.
 */
double studentTCritical(double confidence, double df);

/**
 * Memoized studentTCritical for the hot path: the incremental reducers
 * recompute the same (confidence, df) critical value once per key per
 * map completion, so this caches by exact (confidence, df) pair. The
 * runtime is single-threaded by design (see sim/event_queue.h), so a
 * plain static cache is safe.
 */
double studentTCriticalCached(double confidence, double df);

/** Standard normal CDF. */
double normalCdf(double z);

/**
 * Standard normal quantile (Acklam's rational approximation, |err| < 1e-9).
 *
 * @pre 0 < p < 1
 */
double normalQuantile(double p);

}  // namespace approxhadoop::stats

#endif  // APPROXHADOOP_STATS_STUDENT_T_H_
