#include "stats/student_t.h"

#include <cassert>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <cmath>
#include <limits>

namespace approxhadoop::stats {

namespace {

/**
 * Thread-safe ln|Gamma(x)|. glibc's lgamma() writes the sign into the
 * process-global `signgam`, which races when map-side threads evaluate
 * t-distribution tails concurrently; lgamma_r() takes the sign slot as
 * a parameter instead. All call sites here have x > 0, so the sign is
 * always +1 and can be discarded either way.
 */
double
logGamma(double x)
{
#if defined(__GLIBC__) || defined(__APPLE__)
    int sign = 0;
    return lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

/** Continued fraction for the incomplete beta function (Lentz). */
double
betaContinuedFraction(double a, double b, double x)
{
    const int kMaxIterations = 300;
    const double kEpsilon = 1e-15;
    const double kTiny = 1e-300;

    double qab = a + b;
    double qap = a + 1.0;
    double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < kTiny) {
        d = kTiny;
    }
    d = 1.0 / d;
    double result = d;
    for (int m = 1; m <= kMaxIterations; ++m) {
        double md = static_cast<double>(m);
        double aa = md * (b - md) * x / ((qam + 2.0 * md) * (a + 2.0 * md));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny) {
            d = kTiny;
        }
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny) {
            c = kTiny;
        }
        d = 1.0 / d;
        result *= d * c;
        aa = -(a + md) * (qab + md) * x /
             ((a + 2.0 * md) * (qap + 2.0 * md));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny) {
            d = kTiny;
        }
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny) {
            c = kTiny;
        }
        d = 1.0 / d;
        double delta = d * c;
        result *= delta;
        if (std::fabs(delta - 1.0) < kEpsilon) {
            break;
        }
    }
    return result;
}

}  // namespace

double
incompleteBeta(double a, double b, double x)
{
    assert(a > 0.0 && b > 0.0);
    assert(x >= 0.0 && x <= 1.0);
    if (x == 0.0) {
        return 0.0;
    }
    if (x == 1.0) {
        return 1.0;
    }
    double log_beta = logGamma(a + b) - logGamma(a) - logGamma(b) +
                      a * std::log(x) + b * std::log(1.0 - x);
    double front = std::exp(log_beta);
    // Use the symmetry relation for fast convergence.
    if (x < (a + 1.0) / (a + b + 2.0)) {
        return front * betaContinuedFraction(a, b, x) / a;
    }
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
studentTCdf(double t, double df)
{
    assert(df > 0.0);
    if (std::isinf(t)) {
        return t > 0.0 ? 1.0 : 0.0;
    }
    double x = df / (df + t * t);
    double tail = 0.5 * incompleteBeta(df / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - tail : tail;
}

double
studentTQuantile(double p, double df)
{
    assert(p > 0.0 && p < 1.0);
    assert(df > 0.0);
    if (p == 0.5) {
        return 0.0;
    }
    // Exploit symmetry: solve for the upper tail only.
    bool negate = p < 0.5;
    double target = negate ? 1.0 - p : p;

    // Bracket the quantile by doubling, then bisect.
    double lo = 0.0;
    double hi = 1.0;
    while (studentTCdf(hi, df) < target && hi < 1e12) {
        hi *= 2.0;
    }
    for (int i = 0; i < 200; ++i) {
        double mid = 0.5 * (lo + hi);
        if (studentTCdf(mid, df) < target) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-12 * (1.0 + hi)) {
            break;
        }
    }
    double q = 0.5 * (lo + hi);
    return negate ? -q : q;
}

double
studentTCritical(double confidence, double df)
{
    assert(confidence > 0.0 && confidence < 1.0);
    if (df < 1.0) {
        return std::numeric_limits<double>::infinity();
    }
    double alpha = 1.0 - confidence;
    return studentTQuantile(1.0 - alpha / 2.0, df);
}

double
studentTCriticalCached(double confidence, double df)
{
    if (df < 1.0) {
        return std::numeric_limits<double>::infinity();
    }
    struct Key
    {
        double confidence;
        double df;
        bool operator==(const Key&) const = default;
    };
    struct KeyHash
    {
        size_t
        operator()(const Key& k) const
        {
            return std::hash<double>()(k.confidence) ^
                   (std::hash<double>()(k.df) * 1099511628211ULL);
        }
    };
    // Map-side UDFs run on thread-pool workers (JobConfig::
    // num_exec_threads), so the cache is shared mutable state: readers
    // take a shared lock (the steady-state path — every wave hits the
    // same handful of (confidence, df) pairs), writers an exclusive one.
    static std::shared_mutex cache_mutex;
    static std::unordered_map<Key, double, KeyHash> cache;
    Key key{confidence, df};
    {
        std::shared_lock<std::shared_mutex> lock(cache_mutex);
        auto it = cache.find(key);
        if (it != cache.end()) {
            return it->second;
        }
    }
    // Compute outside the lock: two racing threads may both evaluate,
    // but the function is pure so either insert wins harmlessly.
    double value = studentTCritical(confidence, df);
    std::unique_lock<std::shared_mutex> lock(cache_mutex);
    // Bound the cache; df values are job-size-bounded in practice.
    if (cache.size() > 1'000'000) {
        cache.clear();
    }
    cache.emplace(key, value);
    return value;
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    assert(p > 0.0 && p < 1.0);
    // Acklam's algorithm.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double p_low = 0.02425;
    const double p_high = 1.0 - p_low;

    double q;
    double r;
    if (p < p_low) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= p_high) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
                1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace approxhadoop::stats
