#include "stats/nelder_mead.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace approxhadoop::stats {

NelderMeadResult
nelderMead(const std::function<double(const std::vector<double>&)>& objective,
           const std::vector<double>& x0, const NelderMeadOptions& options)
{
    const double kAlpha = 1.0;   // reflection
    const double kGamma = 2.0;   // expansion
    const double kRho = 0.5;     // contraction
    const double kSigma = 0.5;   // shrink

    size_t dim = x0.size();
    assert(dim > 0);

    struct Vertex
    {
        std::vector<double> x;
        double f;
    };

    // Initial simplex: x0 plus one displaced vertex per coordinate.
    std::vector<Vertex> simplex;
    simplex.reserve(dim + 1);
    simplex.push_back({x0, objective(x0)});
    for (size_t i = 0; i < dim; ++i) {
        std::vector<double> x = x0;
        double step = options.initial_step;
        if (x[i] != 0.0) {
            step *= std::fabs(x[i]);
        }
        x[i] += step;
        simplex.push_back({x, objective(x)});
    }

    auto by_value = [](const Vertex& a, const Vertex& b) {
        return a.f < b.f;
    };

    NelderMeadResult result;
    for (int iter = 0; iter < options.max_iterations; ++iter) {
        std::sort(simplex.begin(), simplex.end(), by_value);
        result.iterations = iter + 1;

        double spread = std::fabs(simplex.back().f - simplex.front().f);
        if (std::isfinite(simplex.front().f) &&
            spread < options.tolerance) {
            result.converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        std::vector<double> centroid(dim, 0.0);
        for (size_t v = 0; v < dim; ++v) {
            for (size_t i = 0; i < dim; ++i) {
                centroid[i] += simplex[v].x[i];
            }
        }
        for (double& c : centroid) {
            c /= static_cast<double>(dim);
        }

        const Vertex& worst = simplex.back();
        auto blend = [&](double coeff) {
            std::vector<double> x(dim);
            for (size_t i = 0; i < dim; ++i) {
                x[i] = centroid[i] + coeff * (centroid[i] - worst.x[i]);
            }
            return x;
        };

        std::vector<double> reflected = blend(kAlpha);
        double f_reflected = objective(reflected);

        if (f_reflected < simplex.front().f) {
            std::vector<double> expanded = blend(kGamma);
            double f_expanded = objective(expanded);
            if (f_expanded < f_reflected) {
                simplex.back() = {expanded, f_expanded};
            } else {
                simplex.back() = {reflected, f_reflected};
            }
            continue;
        }
        if (f_reflected < simplex[dim - 1].f) {
            simplex.back() = {reflected, f_reflected};
            continue;
        }
        std::vector<double> contracted = blend(-kRho);
        double f_contracted = objective(contracted);
        if (f_contracted < worst.f) {
            simplex.back() = {contracted, f_contracted};
            continue;
        }
        // Shrink toward the best vertex.
        for (size_t v = 1; v <= dim; ++v) {
            for (size_t i = 0; i < dim; ++i) {
                simplex[v].x[i] = simplex[0].x[i] +
                                  kSigma * (simplex[v].x[i] - simplex[0].x[i]);
            }
            simplex[v].f = objective(simplex[v].x);
        }
    }

    std::sort(simplex.begin(), simplex.end(), by_value);
    result.x = simplex.front().x;
    result.value = simplex.front().f;
    return result;
}

}  // namespace approxhadoop::stats
