#include "stats/block_minima.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace approxhadoop::stats {

namespace {

template <typename Compare>
std::vector<double>
blockExtremes(const std::vector<double>& values, size_t num_blocks,
              Compare better)
{
    assert(num_blocks >= 1);
    assert(values.size() >= num_blocks);
    size_t block_size = values.size() / num_blocks;
    std::vector<double> extremes;
    extremes.reserve(num_blocks);
    for (size_t b = 0; b < num_blocks; ++b) {
        size_t begin = b * block_size;
        size_t end = (b + 1 == num_blocks) ? values.size()
                                           : begin + block_size;
        double best = values[begin];
        for (size_t i = begin + 1; i < end; ++i) {
            if (better(values[i], best)) {
                best = values[i];
            }
        }
        extremes.push_back(best);
    }
    return extremes;
}

}  // namespace

std::vector<double>
blockMinima(const std::vector<double>& values, size_t num_blocks)
{
    return blockExtremes(values, num_blocks, std::less<double>());
}

std::vector<double>
blockMaxima(const std::vector<double>& values, size_t num_blocks)
{
    return blockExtremes(values, num_blocks, std::greater<double>());
}

size_t
defaultBlockCount(size_t sample_size, size_t min_blocks)
{
    size_t blocks = static_cast<size_t>(
        std::floor(std::sqrt(static_cast<double>(sample_size))));
    blocks = std::max(blocks, min_blocks);
    return std::min(blocks, sample_size);
}

}  // namespace approxhadoop::stats
