#ifndef APPROXHADOOP_STATS_MOMENTS_H_
#define APPROXHADOOP_STATS_MOMENTS_H_

#include <cstdint>

namespace approxhadoop::stats {

/**
 * Numerically stable running mean/variance accumulator (Welford).
 *
 * Used wherever the framework needs sample statistics: per-cluster
 * intra-block variances, task duration models, and test assertions.
 * Supports merging two accumulators (Chan et al.), which the incremental
 * reducers use when map outputs arrive out of order.
 */
class RunningMoments
{
  public:
    /** Adds one observation. */
    void add(double value);

    /** Merges another accumulator into this one. */
    void merge(const RunningMoments& other);

    /** Number of observations. */
    uint64_t count() const { return count_; }

    /** Sample mean (0 if empty). */
    double mean() const { return count_ == 0 ? 0.0 : mean_; }

    /** Unbiased sample variance (0 if fewer than 2 observations). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Sum of observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    double min() const { return min_; }
    double max() const { return max_; }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Computes the unbiased sample variance of m values whose nonzero subset
 * has the given count, sum, and sum of squares; the remaining
 * (m - nonzero_count) values are implicit zeros.
 *
 * This is the paper's "a value of 0 can be correctly associated with an
 * input data item if the Map phase did not produce a value for the item"
 * assumption (Section 3.1), turned into arithmetic: reducers never see the
 * zero-valued units, only the block totals.
 *
 * @param m       total number of sampled units in the cluster
 * @param sum     sum of the emitted (nonzero) values
 * @param sum_sq  sum of squares of the emitted values
 * @return unbiased variance over all m units; 0 when m < 2
 */
double varianceWithImplicitZeros(uint64_t m, double sum, double sum_sq);

}  // namespace approxhadoop::stats

#endif  // APPROXHADOOP_STATS_MOMENTS_H_
