#include "stats/three_stage.h"

#include <cmath>
#include <limits>

#include "stats/moments.h"
#include "stats/student_t.h"

namespace approxhadoop::stats {

namespace {

/** Estimated total for one unit: (K_ij / k_ij) * sum_ij. */
double
unitTotal(const UnitSample& u)
{
    if (u.subunits_sampled == 0) {
        return 0.0;
    }
    return static_cast<double>(u.subunits_total) /
           static_cast<double>(u.subunits_sampled) * u.sum;
}

/** Estimated total for one cluster: (M_i / m_i) * sum_j unitTotal. */
double
clusterTotal(const ThreeStageCluster& c)
{
    uint64_t m = c.effectiveUnitsSampled();
    if (m == 0) {
        return 0.0;
    }
    double sum = 0.0;
    for (const UnitSample& u : c.units) {
        sum += unitTotal(u);
    }
    return static_cast<double>(c.units_total) / static_cast<double>(m) *
           sum;
}

}  // namespace

Estimate
ThreeStageEstimator::estimateSum(
    const std::vector<ThreeStageCluster>& clusters, uint64_t total_clusters,
    double confidence)
{
    Estimate est;
    est.confidence = confidence;
    est.clusters_sampled = clusters.size();

    size_t n = clusters.size();
    if (n == 0) {
        est.variance = std::numeric_limits<double>::infinity();
        est.error_bound = std::numeric_limits<double>::infinity();
        return est;
    }
    double nd = static_cast<double>(n);
    double big_n = static_cast<double>(total_clusters);

    double sum_totals = 0.0;
    for (const ThreeStageCluster& c : clusters) {
        sum_totals += clusterTotal(c);
    }
    est.value = big_n / nd * sum_totals;

    if (n < 2) {
        est.variance = std::numeric_limits<double>::infinity();
        est.error_bound = std::numeric_limits<double>::infinity();
        return est;
    }

    RunningMoments cluster_totals;
    double stage2 = 0.0;
    double stage3 = 0.0;
    for (const ThreeStageCluster& c : clusters) {
        cluster_totals.add(clusterTotal(c));
        uint64_t mi = c.effectiveUnitsSampled();
        if (mi == 0) {
            continue;
        }
        double mid = static_cast<double>(mi);
        double big_m = static_cast<double>(c.units_total);

        // Stage 2: variance of the estimated unit totals within cluster i,
        // counting implicit zero-subunit units as unit totals of 0.
        if (mi >= 2 && c.units_total > mi) {
            RunningMoments unit_totals;
            for (const UnitSample& u : c.units) {
                unit_totals.add(unitTotal(u));
            }
            for (uint64_t z = c.units.size(); z < mi; ++z) {
                unit_totals.add(0.0);
            }
            stage2 +=
                big_m * (big_m - mid) * unit_totals.variance() / mid;
        }

        // Stage 3: subunit sampling variance within each sampled unit.
        double inner = 0.0;
        for (const UnitSample& u : c.units) {
            if (u.subunits_sampled >= 2 &&
                u.subunits_total > u.subunits_sampled) {
                double kij = static_cast<double>(u.subunits_sampled);
                double big_k = static_cast<double>(u.subunits_total);
                double s2 = varianceWithImplicitZeros(
                    u.subunits_sampled, u.sum, u.sum_squares);
                inner += big_k * (big_k - kij) * s2 / kij;
            }
        }
        stage3 += big_m / mid * inner;
    }
    double s2u = cluster_totals.variance();
    est.variance = big_n * (big_n - nd) * s2u / nd +
                   (big_n / nd) * stage2 + (big_n / nd) * stage3;
    double t = studentTCritical(confidence, nd - 1.0);
    est.error_bound = t * std::sqrt(est.variance);
    return est;
}

Estimate
ThreeStageEstimator::estimateAverage(
    const std::vector<ThreeStageCluster>& clusters, uint64_t total_clusters,
    double confidence)
{
    // Numerator: estimated total of the values. Denominator: estimated
    // total number of subunits. Reuse the sum machinery on a copy whose
    // values are the subunit indicator (1 each).
    Estimate value_total = estimateSum(clusters, total_clusters, confidence);

    std::vector<ThreeStageCluster> counts = clusters;
    for (ThreeStageCluster& c : counts) {
        for (UnitSample& u : c.units) {
            u.sum = static_cast<double>(u.subunits_sampled);
            u.sum_squares = static_cast<double>(u.subunits_sampled);
        }
    }
    Estimate count_total = estimateSum(counts, total_clusters, confidence);

    Estimate est;
    est.confidence = confidence;
    est.clusters_sampled = value_total.clusters_sampled;
    if (count_total.value == 0.0) {
        est.variance = std::numeric_limits<double>::infinity();
        est.error_bound = std::numeric_limits<double>::infinity();
        return est;
    }
    double r = value_total.value / count_total.value;
    est.value = r;
    if (!std::isfinite(value_total.variance) ||
        !std::isfinite(count_total.variance)) {
        est.variance = std::numeric_limits<double>::infinity();
        est.error_bound = std::numeric_limits<double>::infinity();
        return est;
    }
    // First-order (independent-components) delta approximation; the exact
    // covariance term is omitted, which is conservative when value and
    // count are positively correlated.
    double tx = count_total.value;
    est.variance = (value_total.variance + r * r * count_total.variance) /
                   (tx * tx);
    double t = studentTCritical(
        confidence, static_cast<double>(est.clusters_sampled) - 1.0);
    est.error_bound = t * std::sqrt(est.variance);
    return est;
}

}  // namespace approxhadoop::stats
