#ifndef APPROXHADOOP_STATS_NELDER_MEAD_H_
#define APPROXHADOOP_STATS_NELDER_MEAD_H_

#include <functional>
#include <vector>

namespace approxhadoop::stats {

/** Result of a Nelder-Mead minimization. */
struct NelderMeadResult
{
    /** Best point found. */
    std::vector<double> x;
    /** Objective value at x. */
    double value = 0.0;
    /** Number of iterations executed. */
    int iterations = 0;
    /** True if the simplex converged before hitting the iteration cap. */
    bool converged = false;
};

/** Tuning knobs for nelderMead(). */
struct NelderMeadOptions
{
    int max_iterations = 2000;
    /** Stop when the simplex value spread falls below this. */
    double tolerance = 1e-10;
    /** Initial simplex displacement per coordinate. */
    double initial_step = 0.1;
};

/**
 * Derivative-free simplex minimization (Nelder & Mead 1965).
 *
 * Used by the GEV maximum-likelihood fit, where the log-likelihood has a
 * bounded support region that makes gradient methods awkward: the
 * objective may return +infinity outside the feasible region and the
 * simplex simply contracts away from it.
 *
 * @param objective function to minimize; may return +inf for infeasible x
 * @param x0        starting point (dimension defines the problem size)
 */
NelderMeadResult
nelderMead(const std::function<double(const std::vector<double>&)>& objective,
           const std::vector<double>& x0,
           const NelderMeadOptions& options = {});

}  // namespace approxhadoop::stats

#endif  // APPROXHADOOP_STATS_NELDER_MEAD_H_
