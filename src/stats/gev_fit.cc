#include "stats/gev_fit.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>

#include "stats/moments.h"
#include "stats/nelder_mead.h"
#include "stats/student_t.h"

namespace approxhadoop::stats {

namespace {

constexpr double kEulerMascheroni = 0.5772156649015329;

/**
 * Inverts a symmetric 3x3 matrix via the adjugate. Returns false when the
 * determinant is (numerically) zero.
 */
bool
invert3x3(const std::array<std::array<double, 3>, 3>& m,
          std::array<std::array<double, 3>, 3>& out)
{
    double det =
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
        m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
        m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    if (!std::isfinite(det) || std::fabs(det) < 1e-30) {
        return false;
    }
    double inv = 1.0 / det;
    out[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv;
    out[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv;
    out[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv;
    out[1][0] = out[0][1];
    out[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv;
    out[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv;
    out[2][0] = out[0][2];
    out[2][1] = out[1][2];
    out[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv;
    return true;
}

/** Numerical Hessian of the objective at theta (relative central steps). */
std::array<std::array<double, 3>, 3>
numericalHessian(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::array<double, 3>& theta)
{
    auto nll = [&](const std::array<double, 3>& t) {
        return objective({t[0], t[1], t[2]});
    };
    std::array<double, 3> h;
    for (int i = 0; i < 3; ++i) {
        h[i] = 1e-4 * std::max(1.0, std::fabs(theta[i]));
    }
    std::array<std::array<double, 3>, 3> hess{};
    double f0 = nll(theta);
    for (int i = 0; i < 3; ++i) {
        for (int j = i; j < 3; ++j) {
            std::array<double, 3> tpp = theta;
            std::array<double, 3> tpm = theta;
            std::array<double, 3> tmp = theta;
            std::array<double, 3> tmm = theta;
            tpp[i] += h[i];
            tpp[j] += h[j];
            tpm[i] += h[i];
            tpm[j] -= h[j];
            tmp[i] -= h[i];
            tmp[j] += h[j];
            tmm[i] -= h[i];
            tmm[j] -= h[j];
            double v;
            if (i == j) {
                std::array<double, 3> tp = theta;
                std::array<double, 3> tm = theta;
                tp[i] += h[i];
                tm[i] -= h[i];
                v = (nll(tp) - 2.0 * f0 + nll(tm)) / (h[i] * h[i]);
            } else {
                v = (nll(tpp) - nll(tpm) - nll(tmp) + nll(tmm)) /
                    (4.0 * h[i] * h[j]);
            }
            hess[i][j] = v;
            hess[j][i] = v;
        }
    }
    return hess;
}

}  // namespace

double
ExtremeEstimate::relativeError()  const
{
    if (!ok) {
        return std::numeric_limits<double>::infinity();
    }
    if (value == 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    return std::max(upper - value, value - lower) / std::fabs(value);
}

GevFit
fitGevMaxima(const std::vector<double>& maxima)
{
    GevFit fit;
    if (maxima.size() < 3) {
        return fit;
    }

    RunningMoments moments;
    for (double v : maxima) {
        moments.add(v);
    }
    double sd = moments.stddev();
    if (sd <= 0.0 || !std::isfinite(sd)) {
        // Degenerate sample: every block maximum identical.
        fit.mu = moments.mean();
        fit.sigma = 1e-12;
        fit.xi = 0.0;
        fit.ok = true;
        fit.degenerate = true;
        return fit;
    }

    // Method-of-moments start assuming the Gumbel case.
    double sigma0 = sd * std::sqrt(6.0) / M_PI;
    double mu0 = moments.mean() - kEulerMascheroni * sigma0;

    // Penalized likelihood: the GEV MLE is non-regular for xi <= -0.5
    // (Smith 1985), which arises for minima of distributions with a hard
    // lower endpoint (exactly the optimization-app case). A smooth
    // penalty keeps the fit in the regular regime so the observed
    // information matrix stays meaningful; the resulting CIs are mildly
    // conservative for hard-boundary data.
    double n = static_cast<double>(maxima.size());
    auto objective = [&, n](const std::vector<double>& t) {
        double nll =
            GevDistribution::negLogLikelihood(t[0], t[1], t[2], maxima);
        if (!std::isfinite(nll)) {
            return nll;
        }
        double xi = t[2];
        if (xi < -0.4) {
            double over = -0.4 - xi;
            nll += 1e3 * n * over * over;
        } else if (xi > 1.5) {
            double over = xi - 1.5;
            nll += 1e3 * n * over * over;
        }
        return nll;
    };

    // Try a few shape starts; the likelihood surface can have a boundary
    // ridge, and restarts are cheap at these sample sizes.
    NelderMeadOptions options;
    options.max_iterations = 4000;
    options.tolerance = 1e-12;
    NelderMeadResult best;
    best.value = std::numeric_limits<double>::infinity();
    for (double xi0 : {0.1, -0.1, 0.0}) {
        NelderMeadResult r = nelderMead(objective, {mu0, sigma0, xi0},
                                        options);
        if (r.value < best.value) {
            best = r;
        }
    }
    if (!std::isfinite(best.value)) {
        return fit;
    }
    fit.mu = best.x[0];
    fit.sigma = best.x[1];
    fit.xi = best.x[2];
    fit.neg_log_likelihood = best.value;
    if (fit.sigma <= 0.0) {
        return fit;
    }

    std::array<double, 3> theta = {fit.mu, fit.sigma, fit.xi};
    auto hess = numericalHessian(objective, theta);
    std::array<std::array<double, 3>, 3> cov;
    if (!invert3x3(hess, cov)) {
        return fit;
    }
    // Diagonal must be positive for the fit to be a genuine maximum.
    for (int i = 0; i < 3; ++i) {
        if (!(cov[i][i] > 0.0) || !std::isfinite(cov[i][i])) {
            return fit;
        }
    }
    fit.covariance = cov;
    fit.ok = true;
    return fit;
}

namespace {

/**
 * Shared implementation: fits maxima, reads the quantile at prob, and
 * applies the delta method for the CI.
 */
ExtremeEstimate
estimateFromMaxima(const std::vector<double>& maxima, double prob,
                   double confidence)
{
    ExtremeEstimate est;
    est.confidence = confidence;
    est.observed = *std::max_element(maxima.begin(), maxima.end());

    GevFit fit = fitGevMaxima(maxima);
    if (!fit.ok) {
        est.value = est.observed;
        est.lower = -std::numeric_limits<double>::infinity();
        est.upper = std::numeric_limits<double>::infinity();
        return est;
    }
    if (fit.degenerate) {
        est.value = fit.mu;
        est.lower = fit.mu;
        est.upper = fit.mu;
        est.ok = true;
        return est;
    }

    GevDistribution dist = fit.distribution();
    double q = dist.quantile(prob);

    // Delta method: gradient of the quantile w.r.t. (mu, sigma, xi).
    std::array<double, 3> theta = {fit.mu, fit.sigma, fit.xi};
    std::array<double, 3> grad;
    for (int i = 0; i < 3; ++i) {
        double h = 1e-5 * std::max(1.0, std::fabs(theta[i]));
        std::array<double, 3> tp = theta;
        std::array<double, 3> tm = theta;
        tp[i] += h;
        tm[i] -= h;
        double sp = std::max(tp[1], 1e-12);
        double sm = std::max(tm[1], 1e-12);
        double qp = GevDistribution(tp[0], sp, tp[2]).quantile(prob);
        double qm = GevDistribution(tm[0], sm, tm[2]).quantile(prob);
        grad[i] = (qp - qm) / (2.0 * h);
    }
    double var_q = 0.0;
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            var_q += grad[i] * fit.covariance[i][j] * grad[j];
        }
    }
    if (!(var_q >= 0.0) || !std::isfinite(var_q)) {
        est.value = q;
        est.lower = -std::numeric_limits<double>::infinity();
        est.upper = std::numeric_limits<double>::infinity();
        return est;
    }
    double z = normalQuantile(1.0 - (1.0 - confidence) / 2.0);
    double half = z * std::sqrt(var_q);
    est.value = q;
    est.lower = q - half;
    est.upper = q + half;
    est.ok = true;
    return est;
}

}  // namespace

ExtremeEstimate
estimateMinimum(const std::vector<double>& minima, double percentile,
                double confidence)
{
    assert(percentile > 0.0 && percentile < 1.0);
    // Fit the negated sample as maxima; if G~ is the fitted law of -X then
    // G(x) = 1 - G~(-x), so G(min) = p  <=>  min = -quantile_{G~}(1 - p).
    std::vector<double> negated;
    negated.reserve(minima.size());
    for (double v : minima) {
        negated.push_back(-v);
    }
    ExtremeEstimate neg =
        estimateFromMaxima(negated, 1.0 - percentile, confidence);
    ExtremeEstimate est;
    est.confidence = confidence;
    est.ok = neg.ok;
    est.value = -neg.value;
    est.lower = -neg.upper;
    est.upper = -neg.lower;
    est.observed = -neg.observed;
    return est;
}

ExtremeEstimate
estimateMaximum(const std::vector<double>& maxima, double percentile,
                double confidence)
{
    assert(percentile > 0.0 && percentile < 1.0);
    return estimateFromMaxima(maxima, 1.0 - percentile, confidence);
}

}  // namespace approxhadoop::stats
