#ifndef APPROXHADOOP_STATS_GEV_FIT_H_
#define APPROXHADOOP_STATS_GEV_FIT_H_

#include <array>
#include <vector>

#include "stats/gev.h"

namespace approxhadoop::stats {

/** Result of a GEV maximum-likelihood fit on block maxima. */
struct GevFit
{
    double mu = 0.0;
    double sigma = 1.0;
    double xi = 0.0;
    /** Parameter covariance from the observed information matrix. */
    std::array<std::array<double, 3>, 3> covariance{};
    /** Negative log-likelihood at the optimum. */
    double neg_log_likelihood = 0.0;
    /** False when the optimizer failed or the Hessian was singular. */
    bool ok = false;
    /** True when the sample was (near-)degenerate (all values equal). */
    bool degenerate = false;

    GevDistribution distribution() const { return {mu, sigma, xi}; }
};

/**
 * Fits GEV(mu, sigma, xi) to a sample of block maxima by maximum
 * likelihood (paper Section 3.2). Uses moment-based starting values and
 * Nelder-Mead; parameter covariances come from the numerically evaluated
 * observed information matrix.
 *
 * @param maxima block maxima (at least 3 values for a meaningful fit)
 */
GevFit fitGevMaxima(const std::vector<double>& maxima);

/**
 * Extreme-value estimate with confidence interval, as produced by the
 * ApproxMin/ApproxMax reducers.
 */
struct ExtremeEstimate
{
    /** Estimated minimum (or maximum). */
    double value = 0.0;
    /** Confidence interval around the estimate: [lower, upper]. */
    double lower = 0.0;
    double upper = 0.0;
    double confidence = 0.0;
    /** Best value actually observed in the sample. */
    double observed = 0.0;
    /** False when the GEV fit failed; the CI is then unbounded. */
    bool ok = false;

    /** Half-width of the CI relative to |value|. */
    double relativeError() const;
};

/**
 * Estimates the population minimum from a sample of minima (paper
 * Section 3.2): fit a GEV G to the sample (minima are fitted by negation),
 * report the value min where G(min) = @p percentile, and derive the
 * confidence interval from the bounding fitted distributions G_l / G_h
 * (computed via the delta method on the fitted parameters).
 *
 * @param minima     the sample (one value per map task, or block minima)
 * @param percentile low percentile p at which to read the estimate
 *                   (e.g., 0.01)
 * @param confidence e.g. 0.95
 */
ExtremeEstimate estimateMinimum(const std::vector<double>& minima,
                                double percentile, double confidence);

/** Maximum counterpart of estimateMinimum (reads the 1-p quantile). */
ExtremeEstimate estimateMaximum(const std::vector<double>& maxima,
                                double percentile, double confidence);

}  // namespace approxhadoop::stats

#endif  // APPROXHADOOP_STATS_GEV_FIT_H_
