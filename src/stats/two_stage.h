#ifndef APPROXHADOOP_STATS_TWO_STAGE_H_
#define APPROXHADOOP_STATS_TWO_STAGE_H_

#include <cstdint>
#include <vector>

namespace approxhadoop::stats {

/**
 * Per-cluster sufficient statistics for two-stage sampling.
 *
 * In MapReduce terms (paper Section 3.1): a cluster is one input data
 * block, units are the input data items in the block, and the values are
 * whatever the Map phase emitted for one intermediate key. Units that
 * emitted nothing are implicit zeros and are accounted for by carrying
 * m (units sampled) separately from the emitted-value sums.
 */
struct ClusterSample
{
    /** M_i: total units (data items) in the cluster (block). */
    uint64_t units_total = 0;
    /** m_i: units actually sampled/processed from the cluster. */
    uint64_t units_sampled = 0;
    /** Number of sampled units that emitted a (nonzero) value. */
    uint64_t emitted = 0;
    /** Sum of emitted values. */
    double sum = 0.0;
    /** Sum of squares of emitted values. */
    double sum_squares = 0.0;
};

/**
 * Per-cluster statistics for ratio/average estimation: two co-observed
 * variables y (numerator) and x (denominator) over the same sampled units,
 * plus their cross moment for residual variances.
 */
struct RatioClusterSample
{
    uint64_t units_total = 0;
    uint64_t units_sampled = 0;
    double sum_y = 0.0;
    double sum_squares_y = 0.0;
    double sum_x = 0.0;
    double sum_squares_x = 0.0;
    double sum_xy = 0.0;
};

/** Point estimate with its variance and confidence interval half-width. */
struct Estimate
{
    /** Estimated quantity (tau-hat for sums; r-hat for ratios). */
    double value = 0.0;
    /** Estimated variance of the estimator. */
    double variance = 0.0;
    /** Half-width of the confidence interval (the paper's epsilon). */
    double error_bound = 0.0;
    /** Confidence level the bound was computed at. */
    double confidence = 0.0;
    /** n: number of sampled clusters that informed the estimate. */
    uint64_t clusters_sampled = 0;

    /** error_bound / |value|; +inf when value == 0. */
    double relativeError() const;
};

/**
 * Two-stage sampling estimators (Lohr, "Sampling: Design and Analysis").
 *
 * Implements the paper's Equations 1-3: unbiased estimation of population
 * sums (and derived counts, averages, ratios) from a random sample of n of
 * N clusters, with m_i of M_i units sampled within each chosen cluster.
 * Confidence intervals use Student's t with n-1 degrees of freedom.
 *
 * All estimators tolerate degenerate inputs gracefully: a single sampled
 * cluster yields an infinite error bound rather than a crash, and clusters
 * sampled exhaustively (m_i = M_i) contribute no within-cluster variance.
 */
class TwoStageEstimator
{
  public:
    /**
     * Estimates the population sum of the unit values (Equation 1) and its
     * error bound (Equation 2).
     *
     * @param clusters       statistics for each sampled cluster
     * @param total_clusters N: clusters in the whole population
     * @param confidence     e.g. 0.95 for 95% confidence intervals
     */
    static Estimate estimateSum(const std::vector<ClusterSample>& clusters,
                                uint64_t total_clusters, double confidence);

    /**
     * Estimates how many units satisfy a predicate. Identical math to
     * estimateSum with indicator values, so sum_squares must equal sum.
     */
    static Estimate estimateCount(const std::vector<ClusterSample>& clusters,
                                  uint64_t total_clusters, double confidence);

    /**
     * Estimates the ratio of two population sums r = tau_y / tau_x using
     * the linearized (residual) variance: d_ij = y_ij - r x_ij run through
     * the two-stage sum variance, scaled by 1 / tau_x^2.
     */
    static Estimate
    estimateRatio(const std::vector<RatioClusterSample>& clusters,
                  uint64_t total_clusters, double confidence);

    /**
     * Estimates the population mean value per unit. This is the ratio
     * estimator with x_ij = 1, which stays valid when the population unit
     * count is itself only estimated from the sample.
     */
    static Estimate
    estimateAverage(const std::vector<ClusterSample>& clusters,
                    uint64_t total_clusters, double confidence);

    /**
     * Variance of the sum estimator alone (Equation 3); exposed so the
     * target-error controller can re-evaluate candidate sampling plans.
     */
    static double sumVariance(const std::vector<ClusterSample>& clusters,
                              uint64_t total_clusters);
};

}  // namespace approxhadoop::stats

#endif  // APPROXHADOOP_STATS_TWO_STAGE_H_
