#include "stats/gev.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace approxhadoop::stats {

namespace {
// Shape values below this are treated as the Gumbel (xi = 0) case to
// avoid catastrophic cancellation in (1 + xi z)^(-1/xi).
constexpr double kXiEpsilon = 1e-9;
}  // namespace

GevDistribution::GevDistribution(double mu, double sigma, double xi)
    : mu_(mu), sigma_(sigma), xi_(xi)
{
    assert(sigma > 0.0);
}

double
GevDistribution::inSupport(double x) const
{
    if (std::fabs(xi_) < kXiEpsilon) {
        return true;
    }
    return 1.0 + xi_ * (x - mu_) / sigma_ > 0.0;
}

double
GevDistribution::cdf(double x) const
{
    double z = (x - mu_) / sigma_;
    if (std::fabs(xi_) < kXiEpsilon) {
        return std::exp(-std::exp(-z));
    }
    double arg = 1.0 + xi_ * z;
    if (arg <= 0.0) {
        // Below the lower endpoint for xi > 0, or above the upper endpoint
        // for xi < 0.
        return xi_ > 0.0 ? 0.0 : 1.0;
    }
    return std::exp(-std::pow(arg, -1.0 / xi_));
}

double
GevDistribution::logPdf(double x) const
{
    double z = (x - mu_) / sigma_;
    if (std::fabs(xi_) < kXiEpsilon) {
        return -std::log(sigma_) - z - std::exp(-z);
    }
    double arg = 1.0 + xi_ * z;
    if (arg <= 0.0) {
        return -std::numeric_limits<double>::infinity();
    }
    double t = std::pow(arg, -1.0 / xi_);
    return -std::log(sigma_) + (-1.0 / xi_ - 1.0) * std::log(arg) - t;
}

double
GevDistribution::pdf(double x) const
{
    double lp = logPdf(x);
    return std::isfinite(lp) ? std::exp(lp) : 0.0;
}

double
GevDistribution::quantile(double p) const
{
    assert(p > 0.0 && p < 1.0);
    double y = -std::log(p);
    if (std::fabs(xi_) < kXiEpsilon) {
        return mu_ - sigma_ * std::log(y);
    }
    return mu_ + sigma_ / xi_ * (std::pow(y, -xi_) - 1.0);
}

double
GevDistribution::negLogLikelihood(double mu, double sigma, double xi,
                                  const std::vector<double>& sample)
{
    if (sigma <= 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    GevDistribution dist(mu, sigma, xi);
    double nll = 0.0;
    for (double x : sample) {
        double lp = dist.logPdf(x);
        if (!std::isfinite(lp)) {
            return std::numeric_limits<double>::infinity();
        }
        nll -= lp;
    }
    return nll;
}

}  // namespace approxhadoop::stats
