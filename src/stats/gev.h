#ifndef APPROXHADOOP_STATS_GEV_H_
#define APPROXHADOOP_STATS_GEV_H_

#include <vector>

namespace approxhadoop::stats {

/**
 * Generalized Extreme Value distribution GEV(mu, sigma, xi).
 *
 * By the Fisher-Tippett-Gnedenko theorem this is the limit law of block
 * maxima of IID samples; ApproxHadoop uses it (paper Section 3.2) to
 * estimate min/max reductions and their confidence intervals after
 * dropping map tasks. Minima are handled by negation at the fitting layer
 * (see gev_fit.h).
 */
class GevDistribution
{
  public:
    /**
     * @param mu    location
     * @param sigma scale (must be > 0)
     * @param xi    shape (0 gives the Gumbel case)
     */
    GevDistribution(double mu, double sigma, double xi);

    /** CDF at @p x (0 or 1 outside the support). */
    double cdf(double x) const;

    /** PDF at @p x (0 outside the support). */
    double pdf(double x) const;

    /** Log PDF at @p x (-inf outside the support). */
    double logPdf(double x) const;

    /**
     * Quantile function.
     * @param p probability in (0, 1)
     */
    double quantile(double p) const;

    /** True when @p x lies in the distribution's support. */
    double inSupport(double x) const;

    double mu() const { return mu_; }
    double sigma() const { return sigma_; }
    double xi() const { return xi_; }

    /**
     * Negative log-likelihood of a sample; +inf if any observation falls
     * outside the support (which makes the MLE objective well-defined for
     * derivative-free search).
     */
    static double negLogLikelihood(double mu, double sigma, double xi,
                                   const std::vector<double>& sample);

  private:
    double mu_;
    double sigma_;
    double xi_;
};

}  // namespace approxhadoop::stats

#endif  // APPROXHADOOP_STATS_GEV_H_
