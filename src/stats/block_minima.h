#ifndef APPROXHADOOP_STATS_BLOCK_MINIMA_H_
#define APPROXHADOOP_STATS_BLOCK_MINIMA_H_

#include <cstddef>
#include <vector>

namespace approxhadoop::stats {

/**
 * Transforms a raw sample into block minima: split into @p num_blocks
 * equal-size contiguous blocks and keep the minimum of each (paper
 * Section 3.2, the Block Minima method). Trailing values that do not fill
 * a complete block are folded into the last block.
 *
 * @pre num_blocks >= 1 and values.size() >= num_blocks
 */
std::vector<double> blockMinima(const std::vector<double>& values,
                                size_t num_blocks);

/** Block maxima counterpart of blockMinima(). */
std::vector<double> blockMaxima(const std::vector<double>& values,
                                size_t num_blocks);

/**
 * Picks a block count for the minima/maxima transform: roughly
 * sqrt(sample size), clamped to [min_blocks, sample size]. The square-root
 * rule balances block size (convergence to the GEV limit) against the
 * number of blocks (fitting sample size).
 */
size_t defaultBlockCount(size_t sample_size, size_t min_blocks = 5);

}  // namespace approxhadoop::stats

#endif  // APPROXHADOOP_STATS_BLOCK_MINIMA_H_
