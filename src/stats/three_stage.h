#ifndef APPROXHADOOP_STATS_THREE_STAGE_H_
#define APPROXHADOOP_STATS_THREE_STAGE_H_

#include <cstdint>
#include <vector>

#include "stats/two_stage.h"

namespace approxhadoop::stats {

/**
 * Statistics for one sampled unit (stage 2) that itself contains subunits
 * (stage 3). In the paper's example, a unit is one Web page and the
 * subunits are the <key, value> pairs the Map phase produced for it
 * (e.g., one count per paragraph).
 */
struct UnitSample
{
    /** K_ij: subunits contained in the unit. */
    uint64_t subunits_total = 0;
    /** k_ij: subunits actually sampled. */
    uint64_t subunits_sampled = 0;
    /** Sum of sampled subunit values. */
    double sum = 0.0;
    /** Sum of squares of sampled subunit values. */
    double sum_squares = 0.0;
};

/** Per-cluster data for three-stage sampling. */
struct ThreeStageCluster
{
    /** M_i: total units in the cluster. */
    uint64_t units_total = 0;
    /**
     * m_i: units sampled from the cluster. When larger than
     * units.size(), the difference are implicit units that produced no
     * subunits at all (K_ij = 0); they dilute the cluster mean exactly
     * like the implicit zeros of two-stage sampling. 0 means "equal to
     * units.size()".
     */
    uint64_t units_sampled = 0;
    /** Statistics for each sampled unit that produced subunits. */
    std::vector<UnitSample> units;

    /** Effective m_i. */
    uint64_t
    effectiveUnitsSampled() const
    {
        return units_sampled > units.size() ? units_sampled : units.size();
    }
};

/**
 * Three-stage sampling estimator (paper Section 3.1, "Three-stage
 * sampling"). Extends the two-stage sum estimator with a third variance
 * component for sampling subunits within units:
 *
 *   Var = N(N-n) s_u^2 / n
 *       + (N/n) sum_i M_i (M_i - m_i) s_i^2 / m_i
 *       + (N/n) sum_i (M_i/m_i) sum_j K_ij (K_ij - k_ij) s_ij^2 / k_ij
 *
 * The programmer opts into the third stage explicitly (the framework
 * cannot infer how map outputs group into population units).
 */
class ThreeStageEstimator
{
  public:
    /** Estimates the population sum over all subunits. */
    static Estimate
    estimateSum(const std::vector<ThreeStageCluster>& clusters,
                uint64_t total_clusters, double confidence);

    /**
     * Estimates the mean value per subunit, e.g., the average number of
     * occurrences of a word per paragraph. Uses the ratio estimator with
     * the estimated subunit count as the denominator.
     */
    static Estimate
    estimateAverage(const std::vector<ThreeStageCluster>& clusters,
                    uint64_t total_clusters, double confidence);
};

}  // namespace approxhadoop::stats

#endif  // APPROXHADOOP_STATS_THREE_STAGE_H_
