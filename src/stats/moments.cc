#include "stats/moments.h"

#include <algorithm>
#include <cmath>

namespace approxhadoop::stats {

void
RunningMoments::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
RunningMoments::merge(const RunningMoments& other)
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    uint64_t total = count_ + other.count_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = total;
}

double
RunningMoments::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningMoments::stddev() const
{
    return std::sqrt(variance());
}

double
varianceWithImplicitZeros(uint64_t m, double sum, double sum_sq)
{
    if (m < 2) {
        return 0.0;
    }
    double md = static_cast<double>(m);
    double centered = sum_sq - sum * sum / md;
    if (centered < 0.0) {
        centered = 0.0;  // guard against cancellation
    }
    return centered / (md - 1.0);
}

}  // namespace approxhadoop::stats
