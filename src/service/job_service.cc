#include "service/job_service.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/approx_config.h"
#include "core/approx_input_format.h"
#include "mapreduce/controller.h"
#include "service/slot_arbiter.h"

namespace approxhadoop::service {

namespace {

/**
 * Hands pre-created reducers to the job one by one (the
 * ApproxJobRunner::makeSharedFactory pattern): the controller keeps raw
 * pointers into the pool so it can watch live error estimates.
 */
mr::Job::ReducerFactory
sharedReducerFactory(
    std::shared_ptr<
        std::vector<std::unique_ptr<core::MultiStageSamplingReducer>>>
        pool)
{
    auto next = std::make_shared<size_t>(0);
    return [pool, next]() -> std::unique_ptr<mr::Reducer> {
        if (*next >= pool->size()) {
            throw std::logic_error("reducer pool exhausted");
        }
        return std::move((*pool)[(*next)++]);
    };
}

/**
 * Achieved relative CI half-width of the binding key: the record with
 * the largest absolute error bound, reported the way the paper's
 * headline numbers are (rare keys have huge relative but tiny absolute
 * errors). Negative when no record carries a bound.
 */
double
bindingRelCiWidth(const mr::JobResult& result)
{
    const mr::OutputRecord* binding = nullptr;
    for (const mr::OutputRecord& rec : result.output) {
        if (!rec.has_bound) {
            continue;
        }
        if (binding == nullptr ||
            rec.errorBound() > binding->errorBound()) {
            binding = &rec;
        }
    }
    return binding != nullptr ? binding->relativeError() : -1.0;
}

}  // namespace

JobService::JobService(const ServiceSpec& spec)
    : spec_(spec),
      accuracy_(spec.pressure_threshold, spec.degrade_factor,
                spec.max_target_scale)
{
    if (spec_.fault_plan.changesFleet()) {
        throw std::invalid_argument(
            "JobService: fleet-changing faults (server crashes, "
            "revocation storms, scale-outs, drains) are not supported "
            "in multi-tenant runs (a whole-server event cannot be "
            "attributed to one job)");
    }
    if (spec_.fault_plan.hasDriverCrash()) {
        throw std::invalid_argument(
            "JobService: dcrash driver kills are not supported in "
            "multi-tenant runs (one driver hosts every tenant; use the "
            "single-job --journal path)");
    }
    cluster_ = std::make_unique<sim::Cluster>(
        sim::ClusterConfig::parse(spec_.cluster));

    if (spec_.reducers > static_cast<uint32_t>(cluster_->totalReduceSlots())) {
        throw std::invalid_argument(
            "JobService: per-job reducers exceed the cluster's reduce "
            "slots; no job could ever be admitted");
    }
}

JobService::JobService(const ServiceSpec& spec,
                       std::vector<JobArrival> arrivals)
    : JobService(spec)
{
    forced_arrivals_ = std::move(arrivals);
    use_forced_arrivals_ = true;
    for (size_t i = 1; i < forced_arrivals_.size(); ++i) {
        if (forced_arrivals_[i].time < forced_arrivals_[i - 1].time) {
            throw std::invalid_argument(
                "JobService: explicit arrivals must be in "
                "non-decreasing time order");
        }
    }
}

JobService::~JobService() = default;

ServiceReport
JobService::run()
{
    if (ran_) {
        throw std::logic_error("JobService::run() called twice");
    }
    ran_ = true;

    // Resolve the job mix against the registry up front, loudly.
    std::vector<std::string> names = spec_.workloads;
    if (names.empty()) {
        for (const apps::AggregationWorkload& w :
             apps::aggregationWorkloads()) {
            names.push_back(w.name);
        }
    } else {
        for (const std::string& n : names) {
            if (apps::findAggregationWorkload(n) == nullptr) {
                throw std::invalid_argument(
                    "JobService: unknown workload '" + n + "' (have: " +
                    apps::aggregationWorkloadNames() + ")");
            }
        }
    }

    std::vector<JobArrival> arrivals =
        use_forced_arrivals_ ? forced_arrivals_
                             : ArrivalGenerator(spec_, names).generate();
    if (use_forced_arrivals_) {
        for (const JobArrival& a : arrivals) {
            if (apps::findAggregationWorkload(a.workload) == nullptr) {
                throw std::invalid_argument(
                    "JobService: unknown workload '" + a.workload + "'");
            }
            if (a.tenant >= spec_.tenants.size()) {
                throw std::invalid_argument(
                    "JobService: arrival tenant out of range");
            }
        }
    }
    jobs_.resize(arrivals.size());
    for (uint64_t i = 0; i < arrivals.size(); ++i) {
        ManagedJob& mj = jobs_[i];
        mj.arrival = arrivals[i];
        mj.workload = apps::findAggregationWorkload(mj.arrival.workload);
        assert(mj.workload != nullptr);
        mj.initial_maps = spec_.blocks;
        cluster_->events().schedule(mj.arrival.time,
                                    [this, i]() { onArrival(i); });
    }

    // Drive the shared event queue to exhaustion: arrivals admit jobs,
    // job events run them, completion handlers re-enter pump().
    while (cluster_->events().step()) {
    }

    // Every submitted job must have reached a terminal state — a stall
    // here is a service-level scheduling bug.
    for (const ManagedJob& mj : jobs_) {
        if (mj.state != JobState::kDone && mj.state != JobState::kFailed) {
            const char* state = mj.state == JobState::kPending  ? "pending"
                                : mj.state == JobState::kQueued ? "queued"
                                : mj.state == JobState::kRunning
                                    ? "running"
                                    : "suspended";
            std::string detail;
            if (mj.job) {
                detail = " done=" + std::to_string(mj.job->done()) +
                         " started=" + std::to_string(mj.started) +
                         " suspend_pending=" +
                         std::to_string(mj.job->suspendPending()) +
                         " preempt_pending=" +
                         std::to_string(mj.preempt_pending) +
                         " held=" + std::to_string(mj.job->heldMapSlots()) +
                         " cap=" + std::to_string(mj.job->mapSlotLimit()) +
                         " remaining=" +
                         std::to_string(mj.job->remainingMaps());
            }
            throw std::logic_error(
                "JobService: event queue drained with job '" +
                mj.arrival.workload + "' " + state + detail +
                " (admission or arbitration stall)");
        }
    }
    return buildReport();
}

void
JobService::onArrival(uint64_t id)
{
    ManagedJob& mj = jobs_[id];
    assert(mj.state == JobState::kPending);
    mj.state = JobState::kQueued;
    queue_.push(id, spec_.tenants[mj.arrival.tenant].priority);
    peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
    pump();
}

uint32_t
JobService::freeReduceSlots() const
{
    uint32_t free = 0;
    for (const sim::Server& s : cluster_->servers()) {
        free += static_cast<uint32_t>(s.freeReduceSlots());
    }
    return free;
}

void
JobService::pump()
{
    // Degradation first: the widened targets must be in force before a
    // newly admitted job's controller makes its first decision.
    applyAccuracyPressure();

    // Preemption next, so a victim starts quiescing before admission is
    // retried (the freed slots arrive asynchronously via pump() from
    // onSuspendSettled).
    maybePreempt();

    // Admit in (priority, FIFO) order while each job's whole reducer
    // complement fits (Job::placeReducers claims all reduce slots for
    // the job's lifetime — admitting without them would throw).
    while (!queue_.empty() && freeReduceSlots() >= spec_.reducers) {
        uint64_t front = queue_.front();
        if (deferGateBlocks(front)) {
            ManagedJob& held = jobs_[front];
            if (!held.was_deferred) {
                held.was_deferred = true;
                ++deferred_count_;
            }
            break;
        }
        admit(queue_.pop());
        applyAccuracyPressure();
    }

    // Un-park preempted jobs only after admission had its pick of the
    // free slots: waiting arrivals outrank a parked lower class.
    maybeResume();

    rebalance();
}

bool
JobService::deferGateBlocks(uint64_t front_id) const
{
    if (!spec_.defer) {
        return false;
    }
    if (spec_.tenants[jobs_[front_id].arrival.tenant].priority == 0) {
        return false;
    }
    for (uint64_t id : active_) {
        if (spec_.tenants[jobs_[id].arrival.tenant].priority == 0 &&
            !jobs_[id].job->done()) {
            return true;
        }
    }
    return false;
}

void
JobService::maybePreempt()
{
    if (!spec_.preempt || queue_.empty() ||
        freeReduceSlots() >= spec_.reducers) {
        return;
    }
    uint64_t front = queue_.front();
    if (deferGateBlocks(front)) {
        return;  // the front could not admit even with freed slots
    }
    uint32_t front_prio =
        spec_.tenants[jobs_[front].arrival.tenant].priority;

    // Victim: a running, suspendable job of a strictly less important
    // class; the least important one, latest-admitted among equals, so
    // preemption always evicts the cheapest progress.
    int64_t victim = -1;
    uint32_t victim_prio = 0;
    for (uint64_t id : active_) {
        ManagedJob& mj = jobs_[id];
        if (mj.state != JobState::kRunning || mj.preempt_pending ||
            !mj.started || !mj.job->canSuspend()) {
            continue;
        }
        uint32_t prio = spec_.tenants[mj.arrival.tenant].priority;
        if (prio <= front_prio) {
            continue;
        }
        if (victim < 0 || prio > victim_prio ||
            (prio == victim_prio &&
             mj.admit_time >= jobs_[victim].admit_time)) {
            victim = static_cast<int64_t>(id);
            victim_prio = prio;
        }
    }
    if (victim < 0) {
        return;
    }
    uint64_t vid = static_cast<uint64_t>(victim);
    jobs_[vid].preempt_pending = true;
    jobs_[vid].job->requestSuspend([this, vid](bool suspended) {
        onSuspendSettled(vid, suspended);
    });
}

void
JobService::onSuspendSettled(uint64_t id, bool suspended)
{
    ManagedJob& mj = jobs_[id];
    mj.preempt_pending = false;
    if (!suspended) {
        // The map phase (or the whole job) completed before the victim
        // quiesced; its own completion path already pumped the queue.
        return;
    }
    assert(mj.state == JobState::kRunning);
    mj.state = JobState::kSuspended;
    ++preempted_count_;
    active_.erase(std::remove(active_.begin(), active_.end(), id),
                  active_.end());
    suspended_.push_back(id);
    pump();
}

void
JobService::maybeResume()
{
    while (!suspended_.empty() && freeReduceSlots() >= spec_.reducers) {
        uint64_t id = suspended_.front();
        // Stay parked while a strictly more important job still waits:
        // it has first claim on the freed slots (it will admit — or
        // preempt — from a later pump).
        if (!queue_.empty() &&
            spec_.tenants[jobs_[queue_.front()].arrival.tenant].priority <
                spec_.tenants[jobs_[id].arrival.tenant].priority) {
            return;
        }
        suspended_.erase(suspended_.begin());
        ManagedJob& mj = jobs_[id];
        assert(mj.state == JobState::kSuspended);
        mj.state = JobState::kRunning;
        ++resumed_count_;
        active_.push_back(id);
        std::sort(active_.begin(), active_.end());
        if (active_.size() > 1) {
            for (uint64_t a : active_) {
                jobs_[a].saw_contention = true;
            }
        }
        mj.job->resumeSuspended();
        rebalance();
    }
}

void
JobService::admit(uint64_t id)
{
    ManagedJob& mj = jobs_[id];
    assert(mj.state == JobState::kQueued);
    const apps::AggregationWorkload& w = *mj.workload;

    // Per-job dataset and NameNode, both seeded by the job seed, so the
    // job sees exactly the data and replica placement it would see
    // standalone (the bit-identity contract).
    mj.dataset = w.make_dataset(spec_.blocks, spec_.items,
                                mj.arrival.job_seed);
    mj.namenode = std::make_unique<hdfs::NameNode>(cluster_->numServers(),
                                                   3, mj.arrival.job_seed);

    mr::JobConfig config = w.job_config(spec_.items, spec_.reducers);
    config.name = w.name + "#" + std::to_string(id);
    config.seed = mj.arrival.job_seed;
    config.endgame_left_percent = spec_.endgame_left_percent;
    config.fault_plan = spec_.fault_plan;
    // A job parked in S3 would hold servers other tenants need.
    config.s3_when_drained = false;

    core::ApproxConfig approx;
    approx.target_relative_error = spec_.target_rel_error;
    config.framework_overhead = approx.framework_overhead;

    // Reducer pool + controller, wired exactly as
    // ApproxJobRunner::runAggregation does in target mode.
    mj.pool = std::make_shared<
        std::vector<std::unique_ptr<core::MultiStageSamplingReducer>>>();
    std::vector<core::MultiStageSamplingReducer*> raw;
    for (uint32_t r = 0; r < config.num_reducers; ++r) {
        mj.pool->push_back(
            std::make_unique<core::MultiStageSamplingReducer>(
                w.op, approx.confidence));
        raw.push_back(mj.pool->back().get());
    }

    mj.job = std::make_unique<mr::Job>(*cluster_, *mj.dataset,
                                       *mj.namenode, std::move(config));
    mj.job->setMapperFactory(w.mapper_factory());
    mj.job->setReducerFactory(sharedReducerFactory(mj.pool));
    mj.job->setInputFormat(
        std::make_shared<core::ApproxTextInputFormat>());
    mj.job->setInitialApproximateFraction(approx.user_defined_fraction);
    mj.controller =
        std::make_unique<core::TargetErrorController>(approx, raw);
    mj.job->setController(mj.controller.get());
    mj.job->setCompletionHandler(
        [this, id](bool failed, const std::string& error) {
            onJobCompletion(id, failed, error);
        });

    mj.state = JobState::kRunning;
    mj.admit_time = cluster_->now();
    active_.push_back(id);  // ids admit in queue order; keep ascending
    std::sort(active_.begin(), active_.end());

    // Under contention the fair-share cap must be in force before
    // start() fills slots; alone on the cluster the job runs untouched.
    if (active_.size() > 1) {
        for (uint64_t a : active_) {
            jobs_[a].saw_contention = true;
        }
        rebalance();
    }

    double scale = accuracy_.scaleFor(queue_.size());
    if (scale > 1.0 && spec_.tenants[mj.arrival.tenant].priority > 0) {
        mj.controller->setTargetScale(scale);
        mj.applied_scale = scale;
        mj.ever_degraded = true;
    }

    mj.job->start();
    mj.started = true;
}

void
JobService::rebalance()
{
    if (active_.empty()) {
        return;
    }
    if (active_.size() == 1) {
        // Sole tenant: lift any leftover cap, but only if the job ever
        // ran contended — a never-contended job must see zero service
        // interference (the uncontended-purity / bit-identity rule).
        ManagedJob& mj = jobs_[active_.front()];
        if (mj.saw_contention &&
            mj.job->mapSlotLimit() != std::numeric_limits<int>::max()) {
            mj.job->setMapSlotLimit(std::numeric_limits<int>::max());
            mr::JobHandle(*mj.job).kickScheduler();
        }
        return;
    }

    std::vector<SlotClaim> claims;
    claims.reserve(active_.size());
    for (uint64_t id : active_) {
        ManagedJob& mj = jobs_[id];
        mj.saw_contention = true;
        SlotClaim c;
        c.weight = spec_.tenants[mj.arrival.tenant].weight;
        // Before start() builds the task set, remainingMaps() is 0;
        // use the dataset's block count as the demand estimate.
        c.demand = mj.job->done()  ? 0
                   : mj.started    ? mj.job->remainingMaps()
                                   : mj.initial_maps;
        claims.push_back(c);
    }
    std::vector<int> caps =
        arbitrateSlots(claims, cluster_->totalMapSlots());

    // Apply caps, then kick the starved jobs (largest deficit first) so
    // freed slots land by fair share, not by event-callback order.
    std::vector<std::pair<int64_t, uint64_t>> deficit;
    for (size_t i = 0; i < active_.size(); ++i) {
        ManagedJob& mj = jobs_[active_[i]];
        mj.job->setMapSlotLimit(caps[i]);
        deficit.emplace_back(
            static_cast<int64_t>(caps[i]) -
                static_cast<int64_t>(mj.job->heldMapSlots()),
            active_[i]);
    }
    std::sort(deficit.begin(), deficit.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first) {
                      return a.first > b.first;
                  }
                  return a.second < b.second;
              });
    for (const auto& [gap, id] : deficit) {
        if (gap <= 0) {
            break;
        }
        if (!jobs_[id].job->done()) {
            mr::JobHandle(*jobs_[id].job).kickScheduler();
        }
    }
}

void
JobService::applyAccuracyPressure()
{
    double scale = accuracy_.scaleFor(queue_.size());
    for (uint64_t id : active_) {
        ManagedJob& mj = jobs_[id];
        if (spec_.tenants[mj.arrival.tenant].priority == 0) {
            continue;  // the top class is never degraded
        }
        if (mj.job->done() || scale == mj.applied_scale) {
            continue;
        }
        mj.controller->setTargetScale(scale);
        mj.applied_scale = scale;
        if (scale > 1.0) {
            mj.ever_degraded = true;
        }
    }
}

void
JobService::onJobCompletion(uint64_t id, bool failed,
                            const std::string& error)
{
    (void)error;
    ManagedJob& mj = jobs_[id];
    assert(mj.state == JobState::kRunning);
    mj.state = failed ? JobState::kFailed : JobState::kDone;
    mj.finish_time = cluster_->now();
    active_.erase(std::remove(active_.begin(), active_.end(), id),
                  active_.end());

    JobOutcome out;
    out.arrival = mj.arrival;
    out.completed = !failed;
    out.failed = failed;
    out.final_target_scale = mj.applied_scale;
    out.ever_degraded = mj.ever_degraded;
    out.admit_time = mj.admit_time;
    out.finish_time = mj.finish_time;
    out.latency = mj.finish_time - mj.arrival.time;
    if (!failed) {
        out.result = mj.job->collectResult();
        out.rel_ci_width = bindingRelCiWidth(out.result);
        std::string violation =
            out.result.counters.conservationViolation(spec_.reducers);
        if (!violation.empty()) {
            throw std::logic_error(
                "JobService: counter conservation violated for job " +
                std::to_string(id) + ": " + violation);
        }
    }
    outcomes_.push_back(std::move(out));

    pump();
}

ServiceReport
JobService::buildReport()
{
    ServiceReport report;
    report.spec = specSummary(spec_);
    report.seed = spec_.seed;
    report.duration = spec_.duration;
    report.jobs_submitted = jobs_.size();
    report.peak_queue_depth = peak_queue_depth_;
    report.jobs_preempted = preempted_count_;
    report.jobs_resumed = resumed_count_;
    report.jobs_suspended_live = suspended_.size();
    report.jobs_deferred = deferred_count_;
    // Conservation: every park is matched by an un-park (or is still
    // live, which run() already rejects for a completed simulation).
    if (report.jobs_preempted !=
        report.jobs_resumed + report.jobs_suspended_live) {
        throw std::logic_error(
            "JobService: preemption identity violated: preempted=" +
            std::to_string(report.jobs_preempted) + " resumed=" +
            std::to_string(report.jobs_resumed) + " suspended_live=" +
            std::to_string(report.jobs_suspended_live));
    }

    double makespan = 0.0;
    for (const JobOutcome& o : outcomes_) {
        makespan = std::max(makespan, o.finish_time);
        report.jobs_completed += o.completed ? 1 : 0;
        report.jobs_failed += o.failed ? 1 : 0;
    }
    report.sim_makespan = makespan;
    cluster_->accrueAll();
    report.energy_wh = cluster_->energyWattHours();

    for (uint32_t ti = 0; ti < spec_.tenants.size(); ++ti) {
        const TenantClass& tc = spec_.tenants[ti];
        TenantReport tr;
        tr.name = tc.name;
        tr.priority = tc.priority;
        tr.weight = tc.weight;
        tr.target_rel_error = spec_.target_rel_error;
        tr.slo_seconds = tc.slo_seconds;

        std::vector<double> latencies;
        double ci_sum = 0.0;
        uint64_t ci_count = 0;
        for (const JobOutcome& o : outcomes_) {
            if (o.arrival.tenant != ti) {
                continue;
            }
            ++tr.jobs_submitted;
            if (o.failed) {
                ++tr.jobs_failed;
                continue;
            }
            ++tr.jobs_completed;
            latencies.push_back(o.latency);
            if (o.ever_degraded) {
                ++tr.jobs_degraded;
            }
            if (o.rel_ci_width >= 0.0) {
                ci_sum += o.rel_ci_width;
                ++ci_count;
                tr.max_rel_ci_width =
                    std::max(tr.max_rel_ci_width, o.rel_ci_width);
            }
            tr.slot_seconds += o.result.counters.map_slot_seconds;
            if (tc.slo_seconds > 0.0 && o.latency > tc.slo_seconds) {
                ++tr.slo_violations;
            }
        }
        std::sort(latencies.begin(), latencies.end());
        tr.p50_latency = percentileSorted(latencies, 0.50);
        tr.p99_latency = percentileSorted(latencies, 0.99);
        if (!latencies.empty()) {
            double sum = 0.0;
            for (double l : latencies) {
                sum += l;
            }
            tr.mean_latency = sum / static_cast<double>(latencies.size());
        }
        tr.goodput_per_ksec =
            static_cast<double>(tr.jobs_completed) / spec_.duration *
            1000.0;
        if (ci_count > 0) {
            tr.mean_rel_ci_width = ci_sum / static_cast<double>(ci_count);
        }
        report.tenants.push_back(std::move(tr));
    }
    return report;
}

}  // namespace approxhadoop::service
