#ifndef APPROXHADOOP_SERVICE_SLOT_ARBITER_H_
#define APPROXHADOOP_SERVICE_SLOT_ARBITER_H_

#include <cstdint>
#include <vector>

namespace approxhadoop::service {

/** One running job's claim on the cluster's map slots. */
struct SlotClaim
{
    /** Fair-share weight of the owning tenant (> 0). */
    double weight = 1.0;
    /** Map tasks the job still wants to run (remaining maps). */
    uint64_t demand = 0;
};

/**
 * Weighted fair-share slot arbitration (the SlotArbiter): splits
 * @p total_slots map slots across the claims by weighted waterfilling.
 *
 * Properties, all deterministic (ties break toward the lower claim
 * index, which the service keeps in admission order):
 *
 *  - work conservation: the caps sum to min(total, sum of demands);
 *  - progress guarantee: every claim with demand > 0 receives at least
 *    one slot while slots remain, so no admitted job can stall forever
 *    behind a heavier tenant (it holds its reduce slots regardless);
 *  - weighted fairness: beyond the progress floor, slots go one at a
 *    time to the claim with the smallest normalized allocation
 *    (cap + 1) / weight, the classic waterfill — a weight-2 tenant
 *    converges to twice the slots of a weight-1 tenant.
 *
 * The caps are applied through mr::Job::setMapSlotLimit, which never
 * revokes running attempts: a shrunk cap takes effect by attrition at
 * wave boundaries, preserving per-job determinism of everything
 * already launched.
 */
std::vector<int> arbitrateSlots(const std::vector<SlotClaim>& claims,
                                int total_slots);

}  // namespace approxhadoop::service

#endif  // APPROXHADOOP_SERVICE_SLOT_ARBITER_H_
