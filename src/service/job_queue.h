#ifndef APPROXHADOOP_SERVICE_JOB_QUEUE_H_
#define APPROXHADOOP_SERVICE_JOB_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <utility>

namespace approxhadoop::service {

/**
 * Admission queue with tenant priority classes: jobs pop in
 * (priority ascending, FIFO within class) order. Priority 0 is the
 * most important class. Deterministic: ordering depends only on the
 * push sequence, never on addresses or hashes.
 */
class JobQueue
{
  public:
    /** Enqueues job @p id in class @p priority. */
    void
    push(uint64_t id, uint32_t priority)
    {
        entries_.emplace(std::make_pair(priority, next_seq_++), id);
    }

    bool empty() const { return entries_.empty(); }
    uint64_t size() const { return entries_.size(); }

    /** Best (priority, FIFO) job without removing it. @pre !empty() */
    uint64_t
    front() const
    {
        assert(!entries_.empty());
        return entries_.begin()->second;
    }

    /** Removes and returns the best job. @pre !empty() */
    uint64_t
    pop()
    {
        assert(!entries_.empty());
        uint64_t id = entries_.begin()->second;
        entries_.erase(entries_.begin());
        return id;
    }

  private:
    /** (priority, admission sequence) -> job id. */
    std::map<std::pair<uint32_t, uint64_t>, uint64_t> entries_;
    uint64_t next_seq_ = 0;
};

}  // namespace approxhadoop::service

#endif  // APPROXHADOOP_SERVICE_JOB_QUEUE_H_
