#include "service/slot_arbiter.h"

#include <cassert>
#include <cstddef>

using std::size_t;

namespace approxhadoop::service {

std::vector<int>
arbitrateSlots(const std::vector<SlotClaim>& claims, int total_slots)
{
    std::vector<int> caps(claims.size(), 0);
    if (total_slots <= 0) {
        return caps;
    }
    int remaining = total_slots;

    // Progress floor: one slot per claim with demand, in index
    // (admission) order, so every admitted job keeps moving.
    for (size_t i = 0; i < claims.size() && remaining > 0; ++i) {
        if (claims[i].demand > 0) {
            caps[i] = 1;
            --remaining;
        }
    }

    // Waterfill the rest: repeatedly grant one slot to the unmet claim
    // with the smallest normalized allocation (cap + 1) / weight.
    // Compared cross-multiplied so ties are exact, not FP-rounded.
    while (remaining > 0) {
        size_t best = claims.size();
        for (size_t i = 0; i < claims.size(); ++i) {
            assert(claims[i].weight > 0.0);
            if (static_cast<uint64_t>(caps[i]) >= claims[i].demand) {
                continue;
            }
            if (best == claims.size() ||
                (caps[i] + 1.0) * claims[best].weight <
                    (caps[best] + 1.0) * claims[i].weight) {
                best = i;
            }
        }
        if (best == claims.size()) {
            break;  // every demand met
        }
        ++caps[best];
        --remaining;
    }
    return caps;
}

}  // namespace approxhadoop::service
