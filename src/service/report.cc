#include "service/report.h"

#include <cassert>
#include <cmath>

#include "obs/json.h"

namespace approxhadoop::service {

double
percentileSorted(const std::vector<double>& sorted_values,
                 double percentile)
{
    if (sorted_values.empty()) {
        return 0.0;
    }
    assert(percentile > 0.0 && percentile <= 1.0);
    auto rank = static_cast<size_t>(
        std::ceil(percentile * static_cast<double>(sorted_values.size())));
    if (rank == 0) {
        rank = 1;
    }
    return sorted_values[rank - 1];
}

std::string
ServiceReport::toJson() const
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("schema", kSchema);
    w.field("spec", spec);
    w.field("seed", seed);
    w.field("duration", duration);
    w.field("sim_makespan", sim_makespan);
    w.field("jobs_submitted", jobs_submitted);
    w.field("jobs_completed", jobs_completed);
    w.field("jobs_failed", jobs_failed);
    w.field("peak_queue_depth", peak_queue_depth);
    w.field("jobs_preempted", jobs_preempted);
    w.field("jobs_resumed", jobs_resumed);
    w.field("jobs_suspended_live", jobs_suspended_live);
    w.field("jobs_deferred", jobs_deferred);
    w.field("energy_wh", energy_wh);
    w.beginArray("tenants");
    for (const TenantReport& t : tenants) {
        w.beginObject();
        w.field("name", t.name);
        w.field("priority", t.priority);
        w.field("weight", t.weight);
        w.field("jobs_submitted", t.jobs_submitted);
        w.field("jobs_completed", t.jobs_completed);
        w.field("jobs_failed", t.jobs_failed);
        w.field("jobs_degraded", t.jobs_degraded);
        w.field("p50_latency", t.p50_latency);
        w.field("p99_latency", t.p99_latency);
        w.field("mean_latency", t.mean_latency);
        w.field("goodput_per_ksec", t.goodput_per_ksec);
        w.field("mean_rel_ci_width", t.mean_rel_ci_width);
        w.field("max_rel_ci_width", t.max_rel_ci_width);
        w.field("target_rel_error", t.target_rel_error);
        w.field("slot_seconds", t.slot_seconds);
        w.field("slo_seconds", t.slo_seconds);
        w.field("slo_violations", t.slo_violations);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

}  // namespace approxhadoop::service
