#ifndef APPROXHADOOP_SERVICE_JOB_SERVICE_H_
#define APPROXHADOOP_SERVICE_JOB_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/aggregation_registry.h"
#include "core/sampling_reducer.h"
#include "core/target_error_controller.h"
#include "hdfs/dataset.h"
#include "hdfs/namenode.h"
#include "mapreduce/job.h"
#include "service/accuracy_arbiter.h"
#include "service/arrival.h"
#include "service/job_queue.h"
#include "service/report.h"
#include "service/service_spec.h"
#include "sim/cluster.h"

namespace approxhadoop::service {

/**
 * Persistent multi-tenant job service: admits a stream of approximate
 * MapReduce jobs onto ONE shared simulated cluster and arbitrates its
 * slots between them.
 *
 * Pipeline per job: ArrivalGenerator (seeded Poisson over the shared
 * diurnal curve) -> JobQueue (priority classes, FIFO within class,
 * admission gated on free reduce slots) -> SlotArbiter (weighted
 * fair-share map-slot caps, enforced non-destructively at wave
 * boundaries) -> end-game speculation inside each job
 * (JobConfig::endgame_left_percent) -> AccuracyArbiter (queue pressure
 * widens low-priority target error bounds through
 * TargetErrorController::setTargetScale, restored when pressure
 * subsides).
 *
 * Determinism contract: the whole run is a pure function of the spec.
 * When exactly one job is active the service touches nothing — no slot
 * caps, no scheduler kicks — so an uncontended job's output, counters
 * and runtime are bit-identical to the same job run standalone
 * (pinned by test). Under contention, per-job conservation identities
 * and same-spec report byte-identity still hold.
 */
class JobService
{
  public:
    explicit JobService(const ServiceSpec& spec);

    /**
     * Bypasses the ArrivalGenerator and submits exactly @p arrivals
     * (must be in non-decreasing time order, workloads valid). Used by
     * the chaos oracle and tests to stage precise contention patterns.
     */
    JobService(const ServiceSpec& spec, std::vector<JobArrival> arrivals);

    ~JobService();

    /** Runs the full simulation; returns the per-tenant report. */
    ServiceReport run();

    /** The cluster, for post-run inspection in tests. */
    sim::Cluster& cluster() { return *cluster_; }

    /** Per-job outcomes in completion order, for tests (each carries
     *  its JobArrival for correlation). */
    struct JobOutcome
    {
        JobArrival arrival;
        bool completed = false;
        bool failed = false;
        /** Target-error scale in force when the job finished. */
        double final_target_scale = 1.0;
        /** True if the AccuracyArbiter ever widened this job's target. */
        bool ever_degraded = false;
        double admit_time = 0.0;
        double finish_time = 0.0;
        /** Completion - arrival (queue wait included). */
        double latency = 0.0;
        /** Achieved relative CI half-width of the binding key; < 0 when
         *  the job produced no bounded estimate. */
        double rel_ci_width = -1.0;
        mr::JobResult result;  ///< valid when completed
    };
    const std::vector<JobOutcome>& outcomes() const { return outcomes_; }

  private:
    enum class JobState {
        kPending,
        kQueued,
        kRunning,
        /** Preempted: parked at a quiesce point with its reduce slots
         *  released; resumes via maybeResume(). */
        kSuspended,
        kDone,
        kFailed
    };

    /** Everything the service owns for one submitted job. All kept
     *  alive until the service is destroyed: job events capture
     *  pointers into this struct. */
    struct ManagedJob
    {
        JobArrival arrival;
        const apps::AggregationWorkload* workload = nullptr;
        JobState state = JobState::kPending;

        std::unique_ptr<hdfs::BlockDataset> dataset;
        std::unique_ptr<hdfs::NameNode> namenode;
        std::shared_ptr<
            std::vector<std::unique_ptr<core::MultiStageSamplingReducer>>>
            pool;
        std::unique_ptr<core::TargetErrorController> controller;
        std::unique_ptr<mr::Job> job;

        double admit_time = 0.0;
        double finish_time = 0.0;
        /** Scale currently applied to this job's controller. */
        double applied_scale = 1.0;
        bool ever_degraded = false;
        /** True once this job shared the cluster with another: only
         *  then may the service cap or kick it (uncontended purity). */
        bool saw_contention = false;
        /** Remaining-map estimate before start() builds the task set. */
        uint64_t initial_maps = 0;
        /** True once Job::start() has run (task set exists). */
        bool started = false;
        /** A requestSuspend() is in flight (quiescing by attrition). */
        bool preempt_pending = false;
        /** Admission was held by the defer gate at least once. */
        bool was_deferred = false;
    };

    void onArrival(uint64_t id);
    /** Admission + accuracy pressure + preemption + slot rebalance,
     *  invoked after every state change (arrival, completion, park). */
    void pump();
    void admit(uint64_t id);
    void rebalance();
    void applyAccuracyPressure();
    /** True when defer=1 holds @p front_id out of admission. */
    bool deferGateBlocks(uint64_t front_id) const;
    /** Suspends one victim so the queue front can admit (preempt=1). */
    void maybePreempt();
    /** requestSuspend() settled: the victim parked, or a racing
     *  map-phase/job completion cancelled the suspension. */
    void onSuspendSettled(uint64_t id, bool suspended);
    /** Un-parks suspended jobs while slots are free and no strictly
     *  more important job is still queued. */
    void maybeResume();
    void onJobCompletion(uint64_t id, bool failed,
                         const std::string& error);
    uint32_t freeReduceSlots() const;
    ServiceReport buildReport();

    ServiceSpec spec_;
    /** Explicit arrival list (tests/oracle); generated when empty. */
    std::vector<JobArrival> forced_arrivals_;
    bool use_forced_arrivals_ = false;
    std::unique_ptr<sim::Cluster> cluster_;
    AccuracyArbiter accuracy_;
    JobQueue queue_;
    std::vector<ManagedJob> jobs_;       ///< arrival order, stable ids
    std::vector<uint64_t> active_;       ///< running job ids, ascending
    std::vector<uint64_t> suspended_;    ///< parked job ids, park order
    std::vector<JobOutcome> outcomes_;   ///< completion order
    uint64_t peak_queue_depth_ = 0;
    uint64_t preempted_count_ = 0;
    uint64_t resumed_count_ = 0;
    uint64_t deferred_count_ = 0;
    bool ran_ = false;
};

}  // namespace approxhadoop::service

#endif  // APPROXHADOOP_SERVICE_JOB_SERVICE_H_
