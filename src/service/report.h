#ifndef APPROXHADOOP_SERVICE_REPORT_H_
#define APPROXHADOOP_SERVICE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace approxhadoop::service {

/** Aggregated outcome for one tenant class over a service run. */
struct TenantReport
{
    std::string name;
    uint32_t priority = 0;
    double weight = 1.0;

    uint64_t jobs_submitted = 0;
    uint64_t jobs_completed = 0;
    uint64_t jobs_failed = 0;
    /** Jobs whose target was widened by the AccuracyArbiter at least
     *  once. */
    uint64_t jobs_degraded = 0;

    /** Latency = completion - submission (queue wait included),
     *  nearest-rank percentiles over completed jobs; 0 when none. */
    double p50_latency = 0.0;
    double p99_latency = 0.0;
    double mean_latency = 0.0;

    /** Completed jobs per 1000 simulated seconds of arrival window. */
    double goodput_per_ksec = 0.0;

    /** Achieved relative CI half-width of the binding key (the record
     *  with the largest absolute error bound), averaged / maxed over
     *  completed jobs that produced a bounded estimate. */
    double mean_rel_ci_width = 0.0;
    double max_rel_ci_width = 0.0;

    /** The undegraded per-job target relative error. */
    double target_rel_error = 0.0;

    /** Total map-slot occupancy, slot-seconds, across the tenant's
     *  completed jobs (Counters::map_slot_seconds). */
    double slot_seconds = 0.0;

    /** p99 latency SLO (0 = none) and completed jobs exceeding it. */
    double slo_seconds = 0.0;
    uint64_t slo_violations = 0;
};

/**
 * Machine-readable outcome of one JobService run. Fully simulated
 * quantities only — no wall-clock — so the same spec produces a
 * byte-identical report (pinned by the same-seed CI diff).
 */
struct ServiceReport
{
    /** Schema identifier, bumped on breaking change. */
    static constexpr const char* kSchema = "approxhadoop-service-report/1";

    /** Deterministic one-line echo of the spec (specSummary). */
    std::string spec;
    uint64_t seed = 0;
    double duration = 0.0;

    /** Simulated time when the last job finished. */
    double sim_makespan = 0.0;

    uint64_t jobs_submitted = 0;
    uint64_t jobs_completed = 0;
    uint64_t jobs_failed = 0;

    /** Deepest the admission queue ever got. */
    uint64_t peak_queue_depth = 0;

    /**
     * Preemption-by-checkpoint accounting (preempt=1): jobs parked at a
     * quiesce point, jobs un-parked, and jobs still parked when the run
     * ended. The conservation identity
     * jobs_preempted == jobs_resumed + jobs_suspended_live holds at all
     * times, and jobs_suspended_live is always 0 for a completed run —
     * the service never strands a suspended job.
     */
    uint64_t jobs_preempted = 0;
    uint64_t jobs_resumed = 0;
    uint64_t jobs_suspended_live = 0;

    /** Jobs whose admission was held at least once by defer=1. */
    uint64_t jobs_deferred = 0;

    /** Cluster energy over the whole run, watt-hours. */
    double energy_wh = 0.0;

    std::vector<TenantReport> tenants;

    /** Serializes to pretty-printed JSON (deterministic bytes). */
    std::string toJson() const;
};

/** Nearest-rank percentile of an ascending-sorted sample; 0 if empty. */
double percentileSorted(const std::vector<double>& sorted_values,
                        double percentile);

}  // namespace approxhadoop::service

#endif  // APPROXHADOOP_SERVICE_REPORT_H_
