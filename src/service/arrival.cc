#include "service/arrival.h"

#include <cassert>
#include <stdexcept>

#include "workloads/intensity.h"

namespace approxhadoop::service {

namespace {

/** Stream constant separating the arrival Rng from other derivations
 *  of the service seed. */
constexpr uint64_t kArrivalStream = 0xA881;

}  // namespace

ArrivalGenerator::ArrivalGenerator(const ServiceSpec& spec,
                                   std::vector<std::string> workload_names)
    : spec_(spec),
      workload_names_(std::move(workload_names)),
      rng_(Rng(spec.seed).derive(kArrivalStream))
{
    if (workload_names_.empty()) {
        throw std::invalid_argument(
            "ArrivalGenerator: empty workload list");
    }
    if (spec_.tenants.empty()) {
        throw std::invalid_argument("ArrivalGenerator: no tenants");
    }
}

uint32_t
ArrivalGenerator::hourOfWeek(double t, double duration)
{
    assert(duration > 0.0);
    double frac = t / duration;
    if (frac < 0.0) {
        frac = 0.0;
    }
    auto hour = static_cast<uint32_t>(frac * 168.0);
    return hour < 168 ? hour : 167;
}

std::vector<JobArrival>
ArrivalGenerator::generate()
{
    using workloads::maxWeeklyIntensity;
    using workloads::weeklyIntensity;

    double total_arrival_weight = 0.0;
    for (const TenantClass& t : spec_.tenants) {
        total_arrival_weight += t.arrival_weight;
    }
    if (!(total_arrival_weight > 0.0)) {
        throw std::invalid_argument(
            "ArrivalGenerator: tenant arrival weights sum to zero");
    }

    const double peak = maxWeeklyIntensity();
    const double lambda_max = spec_.arrival_rate * peak;

    std::vector<JobArrival> arrivals;
    double t = 0.0;
    while (true) {
        t += rng_.exponential(lambda_max);
        if (t >= spec_.duration) {
            break;
        }
        // Thinning: accept in proportion to the current intensity.
        double intensity = weeklyIntensity(hourOfWeek(t, spec_.duration));
        if (rng_.uniform() >= intensity / peak) {
            continue;
        }
        JobArrival a;
        a.time = t;
        // Weighted tenant pick (cumulative scan, deterministic order).
        double pick = rng_.uniform() * total_arrival_weight;
        double cum = 0.0;
        a.tenant = static_cast<uint32_t>(spec_.tenants.size() - 1);
        for (uint32_t i = 0; i < spec_.tenants.size(); ++i) {
            cum += spec_.tenants[i].arrival_weight;
            if (pick < cum) {
                a.tenant = i;
                break;
            }
        }
        a.workload =
            workload_names_[rng_.uniformInt(workload_names_.size())];
        a.job_seed = rng_.uniformInt(1000000000) + 1;
        arrivals.push_back(std::move(a));
    }
    return arrivals;
}

}  // namespace approxhadoop::service
