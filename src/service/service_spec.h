#ifndef APPROXHADOOP_SERVICE_SERVICE_SPEC_H_
#define APPROXHADOOP_SERVICE_SERVICE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ft/fault_plan.h"

namespace approxhadoop::service {

/**
 * One tenant class of the multi-tenant service: an admission priority,
 * a fair-share weight for map-slot arbitration, and an optional latency
 * SLO used for reporting. Lower `priority` is more important; the
 * highest class (priority 0) is never accuracy-degraded by the
 * AccuracyArbiter.
 */
struct TenantClass
{
    std::string name;

    /** Admission class; 0 = highest. Jobs admit in (priority, FIFO)
     *  order. */
    uint32_t priority = 0;

    /** Weight for the SlotArbiter's weighted fair share (> 0). */
    double weight = 1.0;

    /** Share of the overall arrival stream routed to this tenant. */
    double arrival_weight = 1.0;

    /** p99 latency SLO in simulated seconds (0 = none; reporting
     *  only — the service never drops jobs to meet it). */
    double slo_seconds = 0.0;
};

/**
 * Full configuration of one service simulation: tenant classes, the
 * arrival process, the per-job template, and the arbitration policy.
 * Built either directly (tests) or from the approxsvc CLI's compact
 * `key=value,...` spec string via parseServiceSpec().
 */
struct ServiceSpec
{
    std::vector<TenantClass> tenants;

    /**
     * Aggregate mean arrival rate, jobs per simulated second, at
     * intensity 1.0. Modulated by the shared diurnal/weekly curve
     * (workloads::weeklyIntensity); the arrival window spans exactly
     * one week of the curve regardless of `duration`.
     */
    double arrival_rate = 0.02;

    /** Arrival window [0, duration) in simulated seconds. Jobs already
     *  admitted or queued at the end of the window still run to
     *  completion. */
    double duration = 600.0;

    /** Root seed for the arrival process and all per-job seeds. */
    uint64_t seed = 42;

    // --- per-job template ---

    /** Dataset shape for every generated job. */
    uint64_t blocks = 24;
    uint64_t items = 16;
    uint32_t reducers = 1;

    /** Target relative error each job's TargetErrorController aims
     *  for (before any accuracy degradation). */
    double target_rel_error = 0.05;

    /** End-game speculation threshold passed to every job
     *  (JobConfig::endgame_left_percent); 0 disables. */
    double endgame_left_percent = 25.0;

    /**
     * Workload names drawn (uniformly) for the job mix; empty = every
     * aggregation workload in the registry.
     */
    std::vector<std::string> workloads;

    // --- accuracy arbitration ---

    /** Queue depth at which the AccuracyArbiter starts widening
     *  low-priority targets; 0 disables degradation entirely. */
    uint64_t pressure_threshold = 3;

    /** Multiplicative target widening per threshold of queue depth. */
    double degrade_factor = 2.0;

    /** Cap on the total target-error scale (>= 1). */
    double max_target_scale = 4.0;

    // --- preemption & deferral ---

    /**
     * Preemption-by-checkpoint: when the front of the admission queue
     * cannot admit for lack of reduce slots, suspend the least
     * important running job (strictly lower priority than the waiting
     * one, latest-admitted among equals) at a quiesce point. The victim
     * releases its reduce slots and parks with all in-memory state
     * intact; it resumes once slots free up and no strictly more
     * important job is still waiting. No work is lost — suspended jobs
     * always run to completion.
     */
    bool preempt = false;

    /**
     * Deferred admission: while any priority-0 job is active, hold
     * every lower-priority admission in the queue even when slots are
     * free, keeping the whole cluster for the top class.
     */
    bool defer = false;

    // --- environment ---

    /** Cluster preset: "xeon10" or "atom60". */
    std::string cluster = "xeon10";

    /**
     * Faults injected into every job. Server crashes are rejected by
     * JobService: a whole-server crash cannot be attributed to one job
     * when several tenants hold slots on it (Server::fail requires no
     * busy map slots).
     */
    ft::FaultPlan fault_plan;
};

/**
 * Parses the approxsvc CLI spec string: comma-separated clauses
 *
 *   tenants=N          N priority classes t0..t(N-1); t0 is highest
 *                      priority, weights halve per class (2^(N-1-i))
 *   arrival=R          aggregate arrival rate, jobs per sim second
 *   duration=D         arrival window, sim seconds
 *   seed=S             root seed
 *   blocks=B items=I   per-job dataset shape
 *   reducers=R         reduce tasks per job
 *   target=E           per-job target relative error
 *   pressure=K         queue depth that triggers degradation (0 = off)
 *   degrade=F          target widening factor per pressure step
 *   maxscale=M         cap on the total widening (>= 1)
 *   endgame=P          endgame_left_percent for every job (0 = off)
 *   preempt=0|1        suspend the least important running job when a
 *                      more important arrival cannot admit (resumed
 *                      later; no work lost)
 *   defer=0|1          hold lower-priority admissions while any
 *                      priority-0 job is active
 *   slo=A+B+...        per-tenant p99 SLO seconds ('+'-separated,
 *                      one per tenant, 0 = none)
 *   workloads=a+b+...  job-mix workload names ('+'-separated)
 *   cluster=NAME       xeon10 (default) or atom60
 *   straggler=P:F[:S]  per-attempt injected-straggler fault clause
 *   crash=P            per-attempt crash probability fault clause
 *
 * e.g. "tenants=2,arrival=0.05,duration=600,seed=7,slo=150+0".
 * Malformed input (unknown keys, duplicate keys, bad numbers, trailing
 * garbage) throws std::invalid_argument — loudly, like
 * ft::FaultPlan::parse.
 */
ServiceSpec parseServiceSpec(const std::string& spec);

/** One-line summary echoed into the service report (deterministic). */
std::string specSummary(const ServiceSpec& spec);

/** Multi-line spec grammar for approxsvc --help. */
std::string serviceSpecHelp();

}  // namespace approxhadoop::service

#endif  // APPROXHADOOP_SERVICE_SERVICE_SPEC_H_
