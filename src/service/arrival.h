#ifndef APPROXHADOOP_SERVICE_ARRIVAL_H_
#define APPROXHADOOP_SERVICE_ARRIVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "service/service_spec.h"

namespace approxhadoop::service {

/** One job submission produced by the arrival process. */
struct JobArrival
{
    /** Submission time, simulated seconds. */
    double time = 0.0;
    /** Index into ServiceSpec::tenants. */
    uint32_t tenant = 0;
    /** Aggregation-registry workload name. */
    std::string workload;
    /** Per-job root seed (dataset, placement, task durations). */
    uint64_t job_seed = 0;
};

/**
 * Seeded non-homogeneous Poisson arrival process over the shared
 * diurnal/weekly intensity curve (workloads::weeklyIntensity — the same
 * curve the webserver_log workload samples its records from).
 *
 * Implementation is Poisson thinning: candidate gaps are exponential at
 * the peak rate arrival_rate * maxWeeklyIntensity(), and each candidate
 * is accepted with probability intensity(t) / maxWeeklyIntensity(). The
 * arrival window [0, duration) is mapped onto exactly one week of the
 * curve, so every run exercises the full diurnal + weekend shape.
 *
 * The whole stream is a pure function of (spec.seed, spec fields,
 * workload list): same spec, byte-identical arrivals.
 */
class ArrivalGenerator
{
  public:
    /**
     * @param spec           service configuration (rates, seed, tenants)
     * @param workload_names job-mix candidates, already validated
     *                       against the registry (non-empty)
     */
    ArrivalGenerator(const ServiceSpec& spec,
                     std::vector<std::string> workload_names);

    /** All arrivals in [0, spec.duration), in increasing time order. */
    std::vector<JobArrival> generate();

    /** Maps a sim time in [0, duration) to an hour-of-week in [0, 168). */
    static uint32_t hourOfWeek(double t, double duration);

  private:
    const ServiceSpec& spec_;
    std::vector<std::string> workload_names_;
    Rng rng_;
};

}  // namespace approxhadoop::service

#endif  // APPROXHADOOP_SERVICE_ARRIVAL_H_
