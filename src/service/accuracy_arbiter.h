#ifndef APPROXHADOOP_SERVICE_ACCURACY_ARBITER_H_
#define APPROXHADOOP_SERVICE_ACCURACY_ARBITER_H_

#include <cstdint>

namespace approxhadoop::service {

/**
 * Accuracy-for-latency arbitration policy (the AccuracyArbiter): maps
 * the admission queue depth to a target-error scale for degradable
 * (non-top-priority) jobs.
 *
 * Below the pressure threshold the scale is 1.0 — nobody's accuracy is
 * touched. At or above it, each further threshold of queued jobs
 * multiplies the scale by the degrade factor, capped at max_scale:
 *
 *   queued in [T, 2T)  -> factor
 *   queued in [2T, 3T) -> factor^2
 *   ...                -> min(factor^k, max_scale)
 *
 * The service applies the scale through
 * core::TargetErrorController::setTargetScale, which widens the target
 * the optimizer aims for — low-priority jobs drop more map tasks and
 * finish sooner, freeing slots for the high-priority class. When the
 * queue drains below the threshold the scale returns to 1.0 and future
 * decisions use the user's original target again (widening is never
 * retroactive: clusters already dropped stay dropped, so a degraded
 * job's achieved CI stays sound against its *widened* target).
 *
 * Pure function of (threshold, factor, cap, queue depth): trivially
 * deterministic.
 */
class AccuracyArbiter
{
  public:
    /**
     * @param pressure_threshold queue depth that triggers degradation;
     *                           0 disables degradation entirely
     * @param degrade_factor     target widening per pressure step (>= 1)
     * @param max_scale          cap on the total widening (>= 1)
     */
    AccuracyArbiter(uint64_t pressure_threshold, double degrade_factor,
                    double max_scale);

    /** Target-error scale for degradable jobs at @p queued depth. */
    double scaleFor(uint64_t queued) const;

    uint64_t pressureThreshold() const { return pressure_threshold_; }

  private:
    uint64_t pressure_threshold_;
    double degrade_factor_;
    double max_scale_;
};

}  // namespace approxhadoop::service

#endif  // APPROXHADOOP_SERVICE_ACCURACY_ARBITER_H_
