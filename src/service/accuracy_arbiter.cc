#include "service/accuracy_arbiter.h"

#include <cassert>

namespace approxhadoop::service {

AccuracyArbiter::AccuracyArbiter(uint64_t pressure_threshold,
                                 double degrade_factor, double max_scale)
    : pressure_threshold_(pressure_threshold),
      degrade_factor_(degrade_factor),
      max_scale_(max_scale)
{
    assert(degrade_factor_ >= 1.0);
    assert(max_scale_ >= 1.0);
}

double
AccuracyArbiter::scaleFor(uint64_t queued) const
{
    if (pressure_threshold_ == 0 || queued < pressure_threshold_) {
        return 1.0;
    }
    // One degrade step per full threshold of queued jobs, capped.
    // Multiplication loop rather than pow() keeps the result exactly
    // reproducible across libms.
    uint64_t steps = queued / pressure_threshold_;
    double scale = 1.0;
    for (uint64_t i = 0; i < steps; ++i) {
        scale *= degrade_factor_;
        if (scale >= max_scale_) {
            return max_scale_;
        }
    }
    return scale;
}

}  // namespace approxhadoop::service
