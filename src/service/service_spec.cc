#include "service/service_spec.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "obs/json.h"
#include "sim/cluster.h"

namespace approxhadoop::service {

namespace {

std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> parts;
    size_t start = 0;
    while (start <= s.size()) {
        size_t end = s.find(sep, start);
        if (end == std::string::npos) {
            parts.push_back(s.substr(start));
            break;
        }
        parts.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return parts;
}

double
parseDouble(const std::string& token, const char* what)
{
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
        throw std::invalid_argument(std::string("service spec: bad ") +
                                    what + " '" + token + "'");
    }
    if (!std::isfinite(v)) {
        throw std::invalid_argument(std::string("service spec: ") + what +
                                    " '" + token + "' must be finite");
    }
    return v;
}

double
parsePositive(const std::string& token, const char* what)
{
    double v = parseDouble(token, what);
    if (!(v > 0.0)) {
        throw std::invalid_argument(std::string("service spec: ") + what +
                                    " must be > 0, got '" + token + "'");
    }
    return v;
}

double
parseNonNegative(const std::string& token, const char* what)
{
    double v = parseDouble(token, what);
    if (!(v >= 0.0)) {
        throw std::invalid_argument(std::string("service spec: ") + what +
                                    " must be >= 0, got '" + token + "'");
    }
    return v;
}

uint64_t
parseUint(const std::string& token, const char* what)
{
    if (token.empty() || token.find_first_not_of("0123456789") !=
                             std::string::npos) {
        throw std::invalid_argument(std::string("service spec: bad ") +
                                    what + " '" + token +
                                    "' (want a non-negative integer)");
    }
    errno = 0;
    char* end = nullptr;
    uint64_t v = std::strtoull(token.c_str(), &end, 10);
    if (errno == ERANGE || end != token.c_str() + token.size()) {
        throw std::invalid_argument(std::string("service spec: ") + what +
                                    " '" + token + "' out of range");
    }
    return v;
}

/** Builds the default N-class tenant ladder: t0 highest priority,
 *  weights halving per class so higher classes dominate fair share. */
std::vector<TenantClass>
defaultTenants(uint64_t count)
{
    std::vector<TenantClass> tenants;
    for (uint64_t i = 0; i < count; ++i) {
        TenantClass t;
        t.name = "t" + std::to_string(i);
        t.priority = static_cast<uint32_t>(i);
        t.weight = static_cast<double>(uint64_t{1} << (count - 1 - i));
        t.arrival_weight = 1.0;
        tenants.push_back(std::move(t));
    }
    return tenants;
}

}  // namespace

ServiceSpec
parseServiceSpec(const std::string& spec)
{
    ServiceSpec out;
    out.tenants = defaultTenants(2);
    if (spec.empty()) {
        return out;
    }

    std::set<std::string> seen;
    std::vector<double> slos;
    for (const std::string& clause : split(spec, ',')) {
        size_t eq = clause.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument("service spec: clause '" + clause +
                                        "' is not key=value");
        }
        std::string key = clause.substr(0, eq);
        std::string value = clause.substr(eq + 1);
        if (!seen.insert(key).second) {
            throw std::invalid_argument("service spec: duplicate clause '" +
                                        key + "'");
        }
        if (key == "tenants") {
            uint64_t n = parseUint(value, "tenant count");
            if (n < 1 || n > 16) {
                throw std::invalid_argument(
                    "service spec: tenants must be in [1, 16]");
            }
            out.tenants = defaultTenants(n);
        } else if (key == "arrival") {
            out.arrival_rate = parsePositive(value, "arrival rate");
        } else if (key == "duration") {
            out.duration = parsePositive(value, "duration");
        } else if (key == "seed") {
            out.seed = parseUint(value, "seed");
        } else if (key == "blocks") {
            out.blocks = parseUint(value, "blocks");
            if (out.blocks == 0) {
                throw std::invalid_argument(
                    "service spec: blocks must be >= 1");
            }
        } else if (key == "items") {
            out.items = parseUint(value, "items");
            if (out.items == 0) {
                throw std::invalid_argument(
                    "service spec: items must be >= 1");
            }
        } else if (key == "reducers") {
            uint64_t r = parseUint(value, "reducers");
            if (r < 1 || r > 1024) {
                throw std::invalid_argument(
                    "service spec: reducers must be in [1, 1024]");
            }
            out.reducers = static_cast<uint32_t>(r);
        } else if (key == "target") {
            out.target_rel_error = parsePositive(value, "target error");
        } else if (key == "pressure") {
            out.pressure_threshold = parseUint(value, "pressure threshold");
        } else if (key == "degrade") {
            out.degrade_factor = parseDouble(value, "degrade factor");
            if (out.degrade_factor < 1.0) {
                throw std::invalid_argument(
                    "service spec: degrade factor must be >= 1");
            }
        } else if (key == "maxscale") {
            out.max_target_scale = parseDouble(value, "max target scale");
            if (out.max_target_scale < 1.0) {
                throw std::invalid_argument(
                    "service spec: maxscale must be >= 1");
            }
        } else if (key == "endgame") {
            out.endgame_left_percent =
                parseNonNegative(value, "endgame percent");
            if (out.endgame_left_percent > 100.0) {
                throw std::invalid_argument(
                    "service spec: endgame percent must be <= 100");
            }
        } else if (key == "preempt" || key == "defer") {
            uint64_t v = parseUint(value, key.c_str());
            if (v > 1) {
                throw std::invalid_argument("service spec: " + key +
                                            " must be 0 or 1");
            }
            (key == "preempt" ? out.preempt : out.defer) = v == 1;
        } else if (key == "slo") {
            for (const std::string& s : split(value, '+')) {
                slos.push_back(parseNonNegative(s, "SLO seconds"));
            }
        } else if (key == "workloads") {
            out.workloads = split(value, '+');
            for (const std::string& w : out.workloads) {
                if (w.empty()) {
                    throw std::invalid_argument(
                        "service spec: empty workload name");
                }
            }
        } else if (key == "cluster") {
            // Full fleet grammar: presets (xeon10, atom60) or mixed
            // terms like 10xeon+20atom. Delegate validation to the
            // cluster-spec parser so the grammars cannot drift apart.
            try {
                (void)sim::ClusterConfig::parse(value);
            } catch (const std::invalid_argument& e) {
                throw std::invalid_argument(
                    std::string("service spec: bad cluster spec: ") +
                    e.what());
            }
            out.cluster = value;
        } else if (key == "straggler" || key == "crash") {
            // Delegate the fault clauses to the fault-plan grammar so
            // the two spec languages cannot drift apart.
            ft::FaultPlan partial = ft::FaultPlan::parse(clause);
            if (key == "straggler") {
                out.fault_plan.straggler_prob = partial.straggler_prob;
                out.fault_plan.straggler_factor = partial.straggler_factor;
                out.fault_plan.straggler_sigma = partial.straggler_sigma;
            } else {
                out.fault_plan.task_crash_prob = partial.task_crash_prob;
            }
        } else {
            throw std::invalid_argument("service spec: unknown clause '" +
                                        key + "'");
        }
    }

    if (!slos.empty()) {
        if (slos.size() != out.tenants.size()) {
            throw std::invalid_argument(
                "service spec: slo wants one value per tenant (" +
                std::to_string(out.tenants.size()) + ", got " +
                std::to_string(slos.size()) + ")");
        }
        for (size_t i = 0; i < slos.size(); ++i) {
            out.tenants[i].slo_seconds = slos[i];
        }
    }
    return out;
}

std::string
specSummary(const ServiceSpec& spec)
{
    // Deterministic number rendering (shortest round-trip) so the
    // summary embedded in the report is byte-stable across runs.
    auto num = [](double v) { return obs::JsonWriter::number(v); };
    std::string s = "tenants=" + std::to_string(spec.tenants.size()) +
                    ",arrival=" + num(spec.arrival_rate) +
                    ",duration=" + num(spec.duration) +
                    ",seed=" + std::to_string(spec.seed) +
                    ",blocks=" + std::to_string(spec.blocks) +
                    ",items=" + std::to_string(spec.items) +
                    ",reducers=" + std::to_string(spec.reducers) +
                    ",target=" + num(spec.target_rel_error) +
                    ",pressure=" + std::to_string(spec.pressure_threshold) +
                    ",degrade=" + num(spec.degrade_factor) +
                    ",maxscale=" + num(spec.max_target_scale) +
                    ",endgame=" + num(spec.endgame_left_percent) +
                    ",cluster=" + spec.cluster;
    if (spec.preempt) {
        s += ",preempt=1";
    }
    if (spec.defer) {
        s += ",defer=1";
    }
    if (spec.fault_plan.enabled()) {
        s += ",faults=" + spec.fault_plan.spec();
    }
    return s;
}

std::string
serviceSpecHelp()
{
    return "service spec clauses (comma-separated key=value):\n"
           "  tenants=N          priority classes t0..t(N-1); t0 highest\n"
           "  arrival=R          aggregate arrival rate, jobs/sim-second\n"
           "  duration=D         arrival window, sim seconds\n"
           "  seed=S             root seed (arrivals and per-job seeds)\n"
           "  blocks=B items=I   per-job dataset shape\n"
           "  reducers=R         reduce tasks per job\n"
           "  target=E           per-job target relative error\n"
           "  pressure=K         queue depth triggering degradation (0=off)\n"
           "  degrade=F          target widening factor per pressure step\n"
           "  maxscale=M         cap on total target widening\n"
           "  endgame=P          endgame speculation left-percent (0=off)\n"
           "  preempt=0|1        suspend the least important running job\n"
           "                     when a more important arrival cannot\n"
           "                     admit (resumed later; no work lost)\n"
           "  defer=0|1          hold lower-priority admissions while a\n"
           "                     priority-0 job is active\n"
           "  slo=A+B+...        per-tenant p99 SLO seconds\n"
           "  workloads=a+b+...  job-mix workload names\n"
           "  cluster=SPEC       xeon10 (default), atom60, or a mixed\n"
           "                     fleet like 10xeon+20atom\n"
           "  straggler=P:F[:S]  injected-straggler fault clause\n"
           "  crash=P            per-attempt crash probability\n";
}

}  // namespace approxhadoop::service
