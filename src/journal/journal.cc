#include "journal/journal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "integrity/blob.h"
#include "integrity/checksum.h"

namespace approxhadoop::journal {

namespace {

/** File magic: 8 bytes, version-bearing. */
constexpr char kMagic[8] = {'A', 'X', 'H', 'J', 'N', 'L', '1', '\n'};

/** Seed for the per-frame XXH64 stamp (distinct from the shuffle-chunk
 *  stamp seed so a chunk blob can never masquerade as a frame). */
constexpr uint64_t kFrameSeed = 0x4A4E4C31u;

/** RunSpec blob version (first field of the header payload). */
constexpr uint64_t kSpecVersion = 1;

void
putRawU64(std::string& out, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
}

uint64_t
readRawU64(const std::string& bytes, size_t pos)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<uint64_t>(
                 static_cast<unsigned char>(bytes[pos + i]))
             << (8 * i);
    }
    return v;
}

uint64_t
stampOf(const std::string& payload)
{
    return integrity::hash64(payload.data(), payload.size(), kFrameSeed);
}

std::string
frame(const std::string& payload)
{
    std::string out;
    out.reserve(payload.size() + 16);
    putRawU64(out, payload.size());
    out += payload;
    putRawU64(out, stampOf(payload));
    return out;
}

std::string
formatDiag(const char* field, double a, double b)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s: %.17g vs %.17g", field, a, b);
    return buf;
}

}  // namespace

std::string
RunSpec::serialize() const
{
    integrity::BlobWriter w;
    w.putU64(kSpecVersion);
    w.putString(app);
    w.putBool(precise);
    w.putU64(blocks);
    w.putU64(items);
    w.putU64(seed);
    w.putU64(reducers);
    w.putU64(threads);
    w.putString(cluster);
    w.putDouble(sampling);
    w.putDouble(drop);
    w.putBool(has_target);
    w.putDouble(target);
    w.putDouble(confidence);
    w.putU64(pilot_maps);
    w.putDouble(pilot_ratio);
    w.putBool(s3);
    w.putString(failure_mode);
    w.putU64(max_attempts);
    w.putU64(checkpoint_interval);
    w.putDouble(heartbeat_ms);
    w.putDouble(timeout_ms);
    w.putString(fault_plan);
    w.putDouble(endgame_left_percent);
    w.putU64(map_interval);
    return w.release();
}

RunSpec
RunSpec::deserialize(const std::string& blob)
{
    try {
        integrity::BlobReader r(blob);
        uint64_t version = r.getU64();
        if (version != kSpecVersion) {
            throw JournalError(
                "journal: unsupported header version " +
                std::to_string(version));
        }
        RunSpec spec;
        spec.app = r.getString();
        spec.precise = r.getBool();
        spec.blocks = r.getU64();
        spec.items = r.getU64();
        spec.seed = r.getU64();
        spec.reducers = static_cast<uint32_t>(r.getU64());
        spec.threads = static_cast<uint32_t>(r.getU64());
        spec.cluster = r.getString();
        spec.sampling = r.getDouble();
        spec.drop = r.getDouble();
        spec.has_target = r.getBool();
        spec.target = r.getDouble();
        spec.confidence = r.getDouble();
        spec.pilot_maps = r.getU64();
        spec.pilot_ratio = r.getDouble();
        spec.s3 = r.getBool();
        spec.failure_mode = r.getString();
        spec.max_attempts = static_cast<uint32_t>(r.getU64());
        spec.checkpoint_interval = r.getU64();
        spec.heartbeat_ms = r.getDouble();
        spec.timeout_ms = r.getDouble();
        spec.fault_plan = r.getString();
        spec.endgame_left_percent = r.getDouble();
        spec.map_interval = r.getU64();
        r.expectEnd();
        return spec;
    } catch (const JournalError&) {
        throw;
    } catch (const std::runtime_error& e) {
        throw JournalError(std::string("journal: malformed header: ") +
                           e.what());
    }
}

std::string
encodeEpoch(const Epoch& epoch)
{
    integrity::BlobWriter w;
    w.putU64(epoch.index);
    w.putU64(epoch.kind);
    w.putU64(static_cast<uint64_t>(static_cast<int64_t>(epoch.wave)));
    w.putDouble(epoch.sim_time);
    w.putU64(epoch.maps_completed);
    w.putU64(epoch.maps_terminal);
    w.putString(epoch.counters_blob);
    w.putU64(epoch.delivered.size());
    for (const auto& [task, digest] : epoch.delivered) {
        w.putU64(task);
        w.putU64(digest);
    }
    w.putU64(epoch.rng_digest);
    w.putDouble(epoch.pending_sampling_ratio);
    w.putDouble(epoch.pending_approx_fraction);
    w.putString(epoch.controller_blob);
    w.putU64(epoch.reducer_state.size());
    for (const std::string& s : epoch.reducer_state) {
        w.putString(s);
    }
    w.putU64(epoch.reducer_records.size());
    for (uint64_t r : epoch.reducer_records) {
        w.putU64(r);
    }
    return w.release();
}

Epoch
decodeEpoch(const std::string& blob)
{
    try {
        integrity::BlobReader r(blob);
        Epoch e;
        e.index = r.getU64();
        e.kind = static_cast<uint32_t>(r.getU64());
        if (e.kind > Epoch::kResumeMarker) {
            throw JournalError("journal: unknown epoch kind " +
                               std::to_string(e.kind));
        }
        e.wave = static_cast<int32_t>(
            static_cast<int64_t>(r.getU64()));
        e.sim_time = r.getDouble();
        e.maps_completed = r.getU64();
        e.maps_terminal = r.getU64();
        e.counters_blob = r.getString();
        uint64_t delivered = r.getU64();
        for (uint64_t i = 0; i < delivered; ++i) {
            uint64_t task = r.getU64();
            uint64_t digest = r.getU64();
            e.delivered.emplace_back(task, digest);
        }
        e.rng_digest = r.getU64();
        e.pending_sampling_ratio = r.getDouble();
        e.pending_approx_fraction = r.getDouble();
        e.controller_blob = r.getString();
        uint64_t states = r.getU64();
        for (uint64_t i = 0; i < states; ++i) {
            e.reducer_state.push_back(r.getString());
        }
        uint64_t records = r.getU64();
        for (uint64_t i = 0; i < records; ++i) {
            e.reducer_records.push_back(r.getU64());
        }
        r.expectEnd();
        return e;
    } catch (const JournalError&) {
        throw;
    } catch (const std::runtime_error& e) {
        throw JournalError(std::string("journal: malformed epoch: ") +
                           e.what());
    }
}

LoadedJournal
parseJournal(const std::string& bytes)
{
    if (bytes.size() < sizeof(kMagic) ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
        throw JournalError("journal: bad magic (not a journal file)");
    }

    LoadedJournal out;
    size_t pos = sizeof(kMagic);
    bool have_header = false;
    while (pos < bytes.size()) {
        // A frame needs [u64 len][payload][u64 stamp]; anything shorter
        // at the tail is the torn remains of an interrupted append.
        if (bytes.size() - pos < 8) {
            break;
        }
        uint64_t len = readRawU64(bytes, pos);
        if (len > bytes.size() || bytes.size() - pos - 8 < len + 8) {
            break;
        }
        std::string payload = bytes.substr(pos + 8, len);
        uint64_t stamp = readRawU64(bytes, pos + 8 + len);
        if (stamp != stampOf(payload)) {
            throw JournalError(
                "journal: frame checksum mismatch at byte offset " +
                std::to_string(pos) + " (corrupt journal)");
        }
        if (!have_header) {
            out.spec = RunSpec::deserialize(payload);
            have_header = true;
        } else {
            Epoch e = decodeEpoch(payload);
            if (e.kind == Epoch::kResumeMarker) {
                ++out.resume_markers;
            }
            out.epochs.push_back(std::move(e));
        }
        pos += 8 + len + 8;
        out.sealed_bytes = pos;
    }
    if (!have_header) {
        throw JournalError(
            "journal: missing or torn header (no sealed run spec)");
    }
    out.torn_tail = out.sealed_bytes != bytes.size();
    return out;
}

std::string
readJournalFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        throw JournalError("journal: cannot open '" + path + "'");
    }
    std::string bytes;
    char buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        bytes.append(buf, n);
    }
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) {
        throw JournalError("journal: read error on '" + path + "'");
    }
    return bytes;
}

std::string
epochMismatch(const Epoch& sealed, const Epoch& observed)
{
    std::string where =
        "epoch " + std::to_string(sealed.index) + ": ";
    if (sealed.index != observed.index) {
        return where + formatDiag("index",
                                  static_cast<double>(sealed.index),
                                  static_cast<double>(observed.index));
    }
    if (sealed.kind != observed.kind) {
        return where + formatDiag("kind", sealed.kind, observed.kind);
    }
    if (sealed.wave != observed.wave) {
        return where + formatDiag("wave", sealed.wave, observed.wave);
    }
    if (sealed.sim_time != observed.sim_time) {
        return where +
               formatDiag("sim_time", sealed.sim_time, observed.sim_time);
    }
    if (sealed.maps_completed != observed.maps_completed) {
        return where + formatDiag(
                           "maps_completed",
                           static_cast<double>(sealed.maps_completed),
                           static_cast<double>(observed.maps_completed));
    }
    if (sealed.maps_terminal != observed.maps_terminal) {
        return where + formatDiag(
                           "maps_terminal",
                           static_cast<double>(sealed.maps_terminal),
                           static_cast<double>(observed.maps_terminal));
    }
    if (sealed.counters_blob != observed.counters_blob) {
        return where + "counters snapshot differs";
    }
    if (sealed.delivered != observed.delivered) {
        size_t n = std::min(sealed.delivered.size(),
                            observed.delivered.size());
        for (size_t i = 0; i < n; ++i) {
            if (sealed.delivered[i] != observed.delivered[i]) {
                return where + "delivered chunk digest for task " +
                       std::to_string(sealed.delivered[i].first) +
                       " differs";
            }
        }
        return where + formatDiag(
                           "delivered count",
                           static_cast<double>(sealed.delivered.size()),
                           static_cast<double>(observed.delivered.size()));
    }
    if (sealed.rng_digest != observed.rng_digest) {
        return where + "driver RNG state digest differs";
    }
    if (sealed.pending_sampling_ratio != observed.pending_sampling_ratio) {
        return where + formatDiag("pending_sampling_ratio",
                                  sealed.pending_sampling_ratio,
                                  observed.pending_sampling_ratio);
    }
    if (sealed.pending_approx_fraction !=
        observed.pending_approx_fraction) {
        return where + formatDiag("pending_approx_fraction",
                                  sealed.pending_approx_fraction,
                                  observed.pending_approx_fraction);
    }
    if (sealed.controller_blob != observed.controller_blob) {
        return where + "controller replan state differs";
    }
    if (sealed.reducer_state != observed.reducer_state) {
        return where + "reducer checkpoint state differs";
    }
    if (sealed.reducer_records != observed.reducer_records) {
        return where + "reducer record counts differ";
    }
    return "";
}

std::unique_ptr<JobJournal>
JobJournal::create(const std::string& path, const RunSpec& spec)
{
    std::unique_ptr<JobJournal> j(new JobJournal());
    j->spec_ = spec;
    j->image_.assign(kMagic, sizeof(kMagic));
    j->openFileTruncated(path);
    if (std::fwrite(kMagic, 1, sizeof(kMagic), j->file_) !=
            sizeof(kMagic) ||
        std::fflush(j->file_) != 0) {
        throw JournalError("journal: write error on '" + path + "'");
    }
    j->appendFrame(spec.serialize());
    return j;
}

std::unique_ptr<JobJournal>
JobJournal::createInMemory(const RunSpec& spec)
{
    std::unique_ptr<JobJournal> j(new JobJournal());
    j->spec_ = spec;
    j->image_.assign(kMagic, sizeof(kMagic));
    j->appendFrame(spec.serialize());
    return j;
}

namespace {

Epoch
resumeMarker(const std::vector<Epoch>& sealed, uint32_t resume_count)
{
    Epoch marker;
    marker.kind = Epoch::kResumeMarker;
    marker.index = resume_count;
    // Carry the last sealed clock so sim_time stays non-decreasing
    // across the whole epoch stream (obscheck relies on this).
    for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
        if (it->kind != Epoch::kResumeMarker) {
            marker.sim_time = it->sim_time;
            break;
        }
    }
    return marker;
}

}  // namespace

void
JobJournal::adoptLoaded(LoadedJournal loaded, std::string bytes,
                        const std::string* path)
{
    spec_ = loaded.spec;
    loaded_ = std::move(loaded.epochs);
    resume_count_ = loaded.resume_markers + 1;
    // Truncate any torn tail: the sealed prefix is the recovery point.
    image_ = bytes.substr(0, loaded.sealed_bytes);
    if (path != nullptr) {
        // Rewrite the sealed prefix rather than surgically truncating:
        // journals are small and this needs no platform-specific calls.
        openFileTruncated(*path);
        if (std::fwrite(image_.data(), 1, image_.size(), file_) !=
                image_.size() ||
            std::fflush(file_) != 0) {
            throw JournalError("journal: write error during resume");
        }
    }
    appendFrame(encodeEpoch(resumeMarker(loaded_, resume_count_)));
}

std::unique_ptr<JobJournal>
JobJournal::resumeFile(const std::string& path)
{
    std::string bytes = readJournalFile(path);
    LoadedJournal loaded = parseJournal(bytes);
    std::unique_ptr<JobJournal> j(new JobJournal());
    j->adoptLoaded(std::move(loaded), std::move(bytes), &path);
    return j;
}

std::unique_ptr<JobJournal>
JobJournal::resumeBytes(std::string bytes)
{
    LoadedJournal loaded = parseJournal(bytes);
    std::unique_ptr<JobJournal> j(new JobJournal());
    j->adoptLoaded(std::move(loaded), std::move(bytes), nullptr);
    return j;
}

JobJournal::~JobJournal()
{
    if (file_ != nullptr) {
        std::fclose(file_);
    }
}

uint64_t
JobJournal::epochsToVerify() const
{
    uint64_t left = 0;
    for (size_t i = cursor_; i < loaded_.size(); ++i) {
        if (loaded_[i].kind != Epoch::kResumeMarker) {
            ++left;
        }
    }
    return left;
}

void
JobJournal::onEpoch(const Epoch& epoch)
{
    while (cursor_ < loaded_.size() &&
           loaded_[cursor_].kind == Epoch::kResumeMarker) {
        ++cursor_;
    }
    if (cursor_ < loaded_.size()) {
        std::string diff = epochMismatch(loaded_[cursor_], epoch);
        if (!diff.empty()) {
            throw JournalError(
                "journal: resume diverged from the sealed journal — "
                "the binary, dataset, or configuration changed since "
                "the crash (" +
                diff + ")");
        }
        ++cursor_;
        return;
    }
    appendFrame(encodeEpoch(epoch));
}

void
JobJournal::openFileTruncated(const std::string& path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) {
        throw JournalError("journal: cannot write '" + path + "'");
    }
}

void
JobJournal::appendFrame(const std::string& payload)
{
    std::string framed = frame(payload);
    if (file_ != nullptr) {
        // Flush frame-at-a-time: a SIGKILL leaves at worst one torn
        // frame at the tail, which parseJournal() discards. (Page-cache
        // durability is enough — we recover from process death, not
        // power loss.)
        if (std::fwrite(framed.data(), 1, framed.size(), file_) !=
                framed.size() ||
            std::fflush(file_) != 0) {
            throw JournalError("journal: write error");
        }
    }
    image_ += framed;
}

}  // namespace approxhadoop::journal
