#ifndef APPROXHADOOP_JOURNAL_SINK_H_
#define APPROXHADOOP_JOURNAL_SINK_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

/**
 * @file
 * The journal hook surface mr::Job sees. Header-only on purpose: the
 * mapreduce layer observes its own state into Epoch records and hands
 * them to an abstract EpochSink without linking against the journal
 * codec (src/journal/journal.h), which keeps the dependency graph
 * acyclic — approx_journal links integrity, mapreduce links neither.
 */
namespace approxhadoop::journal {

/**
 * One sealed checkpoint of a running job, captured at a consistency
 * point (wave boundary, map-completion interval, or job completion).
 * Every field is a pure observation of driver state — capturing an
 * epoch never perturbs the run, so journal-on and journal-off runs are
 * bit-identical.
 *
 * Epochs are the crash-consistency proof for resume-by-re-execution:
 * a resumed driver replays the job from the journal header's RunSpec
 * and *verifies* each re-reached consistency point against the sealed
 * epoch recorded by the crashed run. Any divergence means the journal
 * and the binary/config disagree, and resume aborts with a diagnostic
 * instead of silently producing a different answer.
 */
struct Epoch
{
    /** kind codes */
    static constexpr uint32_t kWave = 0;
    static constexpr uint32_t kInterval = 1;
    static constexpr uint32_t kFinal = 2;
    /** Appended by each resume attempt before re-execution; its count
     *  is the number of driver crashes already survived (the dcrash
     *  skip cursor). */
    static constexpr uint32_t kResumeMarker = 3;

    /** Position in the journal's epoch stream (markers included). */
    uint64_t index = 0;
    uint32_t kind = kWave;
    /** Wave number for kWave epochs; -1 otherwise. */
    int32_t wave = -1;
    /** Simulated clock at capture. */
    double sim_time = 0.0;
    uint64_t maps_completed = 0;
    /** Terminal tasks (completed + killed + dropped + absorbed). */
    uint64_t maps_terminal = 0;
    /** mr::Counters::serialize() snapshot. */
    std::string counters_blob;
    /** (task_id, chunk-checksum digest) for map outputs delivered to
     *  reducers since the previous epoch. */
    std::vector<std::pair<uint64_t, uint64_t>> delivered;
    /** Digest of the driver's shared RNG engine state. */
    uint64_t rng_digest = 0;
    /** Controller-pending plan state for not-yet-started maps. */
    double pending_sampling_ratio = 1.0;
    double pending_approx_fraction = 0.0;
    /** JobController::journalState() blob (replan state). */
    std::string controller_blob;
    /** Reducer::checkpoint() blob per reducer ("" when unsupported). */
    std::vector<std::string> reducer_state;
    /** Records shuffled into each reducer so far. */
    std::vector<uint64_t> reducer_records;
};

/** Receiver for job epochs (journal::JobJournal, or a test double). */
class EpochSink
{
  public:
    virtual ~EpochSink() = default;

    /**
     * Called by mr::Job at each consistency point. May throw (e.g. a
     * resume-divergence JournalError); the exception aborts the run.
     */
    virtual void onEpoch(const Epoch& epoch) = 0;
};

/**
 * Thrown by a `dcrash=T` fault event to terminate the driver mid-run.
 * Propagates out of mr::Job::run() past every catch for the contractual
 * JobFailedError: a driver kill is not a job failure, it is the host
 * process dying, and only a restart loop holding the journal (approxrun,
 * the chaos oracle) may catch it.
 */
class DriverKilledError : public std::runtime_error
{
  public:
    explicit DriverKilledError(double at)
        : std::runtime_error("driver killed (dcrash fault) at t=" +
                             std::to_string(at)),
          at_(at)
    {
    }

    double at() const { return at_; }

  private:
    double at_;
};

}  // namespace approxhadoop::journal

#endif  // APPROXHADOOP_JOURNAL_SINK_H_
