#ifndef APPROXHADOOP_JOURNAL_JOURNAL_H_
#define APPROXHADOOP_JOURNAL_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "journal/sink.h"

/**
 * @file
 * Crash-consistent, epoch-structured write-ahead journal for mr::Job.
 *
 * File layout (all integers little-endian):
 *
 *   [8-byte magic "AXHJNL1\n"]
 *   [header frame: RunSpec blob]
 *   [epoch frame]*
 *
 * where every frame is
 *
 *   [u64 payload_len][payload bytes][u64 xxh64(payload)]
 *
 * Appends are flushed frame-at-a-time, so a killed driver leaves at
 * worst one partial frame at the tail. parseJournal() discards a torn
 * tail silently (the expected crash artifact) but treats a checksum
 * mismatch on a *complete* frame — or any malformed frame not at EOF —
 * as corruption and throws JournalError. Recovery therefore always
 * lands on the last sealed epoch, never on a half-written one.
 *
 * Resume is re-execution, not state surgery: the resumed driver
 * replays the job deterministically from the RunSpec and verifies each
 * re-reached consistency point against the sealed epochs
 * (JobJournal::onEpoch), then switches to append mode. See DESIGN.md
 * §11.
 */
namespace approxhadoop::journal {

/** Unreadable, corrupt, or divergent journal. approxrun maps this to
 *  exit 2 (bad usage/input), never a crash. */
class JournalError : public std::runtime_error
{
  public:
    explicit JournalError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Everything needed to re-execute the journaled run bit-identically:
 * the workload, input shape, seeds, approximation settings, recovery
 * policy, and fault plan. `approxrun --resume F` reconstructs its whole
 * configuration from this header — no other flags are needed (or
 * allowed to disagree).
 */
struct RunSpec
{
    /** Aggregation-registry workload name. */
    std::string app;
    /** True for `--precise` runs (no approximation controller). */
    bool precise = false;
    uint64_t blocks = 0;
    uint64_t items = 0;
    uint64_t seed = 0;
    uint32_t reducers = 1;
    uint32_t threads = 1;
    std::string cluster;
    /** Input sampling ratio; meaningful when !has_target && !precise. */
    double sampling = 1.0;
    /** Map dropping ratio. */
    double drop = 0.0;
    bool has_target = false;
    double target = 0.0;
    /** Confidence level for the error bounds. */
    double confidence = 0.95;
    /** Pilot wave (0 maps = disabled). */
    uint64_t pilot_maps = 0;
    double pilot_ratio = 1.0;
    /** --s3: suspend drained servers (energy mode). */
    bool s3 = false;
    /** ft::toString(FailureMode). */
    std::string failure_mode;
    uint32_t max_attempts = 4;
    uint64_t checkpoint_interval = 8;
    double heartbeat_ms = 1000.0;
    double timeout_ms = 10000.0;
    /** ft::FaultPlan::spec() ("" when no faults). */
    std::string fault_plan;
    double endgame_left_percent = 25.0;
    /** Map-completion interval between kInterval epochs (0 = waves only). */
    uint64_t map_interval = 0;

    std::string serialize() const;
    /** @throws JournalError on malformed input */
    static RunSpec deserialize(const std::string& blob);
};

/** Epoch <-> blob codec (BlobWriter framing + integrity stamps).
 *  decodeEpoch throws JournalError on malformed input. */
std::string encodeEpoch(const Epoch& epoch);
Epoch decodeEpoch(const std::string& blob);

/** Result of parsing a journal image. */
struct LoadedJournal
{
    RunSpec spec;
    /** Sealed epochs in file order, resume markers included. */
    std::vector<Epoch> epochs;
    /** Byte length of the sealed prefix (magic + header + epochs). */
    uint64_t sealed_bytes = 0;
    /** True when a partial trailing frame was discarded. */
    bool torn_tail = false;
    /** Resume markers seen (crashes already survived). */
    uint32_t resume_markers = 0;
};

/**
 * Parses journal bytes up to the last sealed frame.
 * @throws JournalError on bad magic, a checksum mismatch on a complete
 *         frame, an undecodable payload, or an absent/torn header.
 */
LoadedJournal parseJournal(const std::string& bytes);

/** Reads a whole file. @throws JournalError when unreadable. */
std::string readJournalFile(const std::string& path);

/**
 * The EpochSink mr::Job records through. Two modes:
 *
 *  - record (create/createInMemory): fresh journal; every epoch is
 *    appended and flushed.
 *  - resume (resumeFile/resumeBytes): the sealed prefix is loaded, any
 *    torn tail truncated, and a resume marker appended. Epochs from the
 *    re-executing job are then *verified* against the sealed prefix —
 *    any field mismatch throws JournalError with a named-field
 *    diagnostic — and once the prefix is exhausted the journal switches
 *    to append mode.
 *
 * File-backed journals also mirror every byte in memory (bytes()), so
 * the chaos oracle can run the whole kill/resume/truncate cycle without
 * touching disk via the InMemory variants.
 */
class JobJournal : public EpochSink
{
  public:
    static std::unique_ptr<JobJournal> create(const std::string& path,
                                              const RunSpec& spec);
    static std::unique_ptr<JobJournal> createInMemory(const RunSpec& spec);
    /** @throws JournalError on unreadable/corrupt/headerless input */
    static std::unique_ptr<JobJournal> resumeFile(const std::string& path);
    static std::unique_ptr<JobJournal> resumeBytes(std::string bytes);

    ~JobJournal() override;

    JobJournal(const JobJournal&) = delete;
    JobJournal& operator=(const JobJournal&) = delete;

    const RunSpec& spec() const { return spec_; }

    /** Crashes survived so far == dcrash events to skip on re-execution
     *  (JobConfig::driver_crash_skip). 0 in record mode. */
    uint32_t resumeCount() const { return resume_count_; }

    /** Sealed epochs still unverified (resume progress, for logging). */
    uint64_t epochsToVerify() const;

    /** Full journal image (identical to the file contents). */
    const std::string& bytes() const { return image_; }

    void onEpoch(const Epoch& epoch) override;

  private:
    JobJournal() = default;

    void adoptLoaded(LoadedJournal loaded, std::string bytes,
                     const std::string* path);
    void appendFrame(const std::string& payload);
    void openFileTruncated(const std::string& path);

    RunSpec spec_;
    /** Sealed epochs awaiting verification (resume mode). */
    std::vector<Epoch> loaded_;
    size_t cursor_ = 0;
    uint32_t resume_count_ = 0;
    std::string image_;
    std::FILE* file_ = nullptr;
};

/** Returns "" when the epochs match, else a named-field diagnostic
 *  ("epoch 7: sim_time: 12.5 vs 12.75"). Exposed for tests/obscheck. */
std::string epochMismatch(const Epoch& sealed, const Epoch& observed);

}  // namespace approxhadoop::journal

#endif  // APPROXHADOOP_JOURNAL_JOURNAL_H_
