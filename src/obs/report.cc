#include "obs/report.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "ft/recovery_policy.h"
#include "obs/json.h"
#include "obs/observability.h"

namespace approxhadoop::obs {

namespace {

void
fillConfig(JobReport& report, const mr::JobConfig& config)
{
    report.job_name = config.name;
    report.seed = config.seed;
    report.threads = config.num_exec_threads;
    report.reducers = config.num_reducers;
    report.failure_mode = ft::toString(config.failure_mode);
    report.fault_plan = config.fault_plan.spec();
    report.cluster = config.cluster_spec;
    report.heartbeat_interval_ms = config.heartbeat_interval_ms;
    report.task_timeout_ms = config.task_timeout_ms;
    report.checkpoint_interval = config.reducer_checkpoint_interval;
}

void
fillObs(JobReport& report, const Observability* obs)
{
    if (obs == nullptr) {
        return;
    }
    report.replans = obs->trace.replans();
    report.metric_snapshots = obs->metrics.waveSnapshots();
}

void
writeCounters(JsonWriter& w, const mr::Counters& c)
{
    w.beginObject("counters");
    w.field("maps_total", c.maps_total);
    w.field("maps_completed", c.maps_completed);
    w.field("maps_killed", c.maps_killed);
    w.field("maps_dropped", c.maps_dropped);
    w.field("maps_speculated", c.maps_speculated);
    w.field("map_attempts_launched", c.map_attempts_launched);
    w.field("map_attempts_failed", c.map_attempts_failed);
    w.field("map_attempts_cancelled", c.map_attempts_cancelled);
    w.field("maps_retried", c.maps_retried);
    w.field("maps_absorbed", c.maps_absorbed);
    w.field("server_crashes", c.server_crashes);
    w.field("servers_added", c.servers_added);
    w.field("servers_revoked", c.servers_revoked);
    w.field("servers_drained", c.servers_drained);
    w.field("servers_retired", c.servers_retired);
    w.field("wasted_attempt_seconds", c.wasted_attempt_seconds);
    w.field("chunks_corrupted", c.chunks_corrupted);
    w.field("chunk_refetches", c.chunk_refetches);
    w.field("map_outputs_lost", c.map_outputs_lost);
    w.field("bad_records_skipped", c.bad_records_skipped);
    w.field("chunks_delivered", c.chunks_delivered);
    w.field("reduce_attempts_failed", c.reduce_attempts_failed);
    w.field("reducer_checkpoints", c.reducer_checkpoints);
    w.field("chunks_replayed", c.chunks_replayed);
    w.field("timeouts_detected", c.timeouts_detected);
    w.field("detection_wait_seconds", c.detection_wait_seconds);
    w.field("items_total", c.items_total);
    w.field("items_read", c.items_read);
    w.field("items_processed", c.items_processed);
    w.field("records_shuffled", c.records_shuffled);
    w.field("local_maps", c.local_maps);
    w.field("remote_maps", c.remote_maps);
    w.field("waves", c.waves);
    w.field("dropped_fraction", c.droppedFraction());
    w.field("effective_sampling_ratio", c.effectiveSamplingRatio());
    w.endObject();
}

}  // namespace

JobReport
JobReport::build(const std::string& app, const mr::JobConfig& config,
                 const mr::JobResult& result, const Observability* obs)
{
    JobReport report;
    report.app = app;
    report.status = "ok";
    fillConfig(report, config);
    report.runtime_s = result.runtime;
    report.energy_wh = result.energy_wh;
    report.counters = result.counters;
    report.fault_summary = result.counters.faultSummary();
    fillObs(report, obs);

    for (const mr::OutputRecord& r : result.output) {
        ResultRow row;
        row.key = r.key;
        row.value = r.value;
        row.has_bound = r.has_bound;
        row.lower = r.lower;
        row.upper = r.upper;
        row.bound = r.errorBound();
        row.relative_bound = r.relativeError();
        report.results.push_back(std::move(row));

        // Same headline-key selection as JobResult::headlineErrorAgainst:
        // maximum finite predicted absolute error.
        double bound = r.errorBound();
        if (r.has_bound && std::isfinite(bound) &&
            (!report.headline.present || bound > report.headline.bound)) {
            report.headline.present = true;
            report.headline.key = r.key;
            report.headline.bound = bound;
            report.headline.relative_bound =
                r.value != 0.0 ? bound / std::fabs(r.value) : 0.0;
        }
    }

    std::map<int, WaveRow> waves;
    for (const mr::MapTaskInfo& t : result.tasks) {
        if (t.wave < 0) {
            // Dropped before starting: no wave, no plan row.
            if (t.state == mr::TaskState::kDropped) {
                ++report.dropped_never_started;
            }
            continue;
        }
        auto [it, inserted] = waves.try_emplace(t.wave);
        WaveRow& row = it->second;
        row.wave = t.wave;
        if (inserted) {
            row.sampling_ratio_min = t.sampling_ratio;
            row.sampling_ratio_max = t.sampling_ratio;
            row.first_start_s = t.start_time;
            row.last_finish_s = t.finish_time;
        } else {
            row.sampling_ratio_min =
                std::min(row.sampling_ratio_min, t.sampling_ratio);
            row.sampling_ratio_max =
                std::max(row.sampling_ratio_max, t.sampling_ratio);
            row.first_start_s = std::min(row.first_start_s, t.start_time);
            row.last_finish_s = std::max(row.last_finish_s, t.finish_time);
        }
        ++row.maps_started;
        if (t.approximate) {
            ++row.approximate_maps;
        }
        switch (t.state) {
        case mr::TaskState::kCompleted: ++row.completed; break;
        case mr::TaskState::kKilled: ++row.killed; break;
        case mr::TaskState::kAbsorbed: ++row.absorbed; break;
        default: break;
        }
        row.failed_attempts += t.failed_attempts;
        row.items_total += t.items_total;
        row.items_processed += t.items_processed;
        row.records_skipped += t.records_skipped;
    }
    for (auto& [wave, row] : waves) {
        report.waves.push_back(std::move(row));
    }
    return report;
}

JobReport
JobReport::fromFailure(const std::string& app, const mr::JobConfig& config,
                       const std::string& error, const mr::Counters& counters,
                       const Observability* obs)
{
    JobReport report;
    report.app = app;
    report.status = "failed";
    report.error = error;
    fillConfig(report, config);
    report.counters = counters;
    report.fault_summary = counters.faultSummary();
    fillObs(report, obs);
    return report;
}

std::string
JobReport::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", kSchema);
    w.field("app", app);
    w.field("status", status);
    if (!error.empty()) {
        w.field("error", error);
    }

    w.beginObject("config");
    w.field("name", job_name);
    w.field("seed", seed);
    w.field("threads", threads);
    w.field("reducers", reducers);
    w.field("failure_mode", failure_mode);
    w.field("fault_plan", fault_plan);
    w.field("cluster", cluster);
    w.field("heartbeat_interval_ms", heartbeat_interval_ms);
    w.field("task_timeout_ms", task_timeout_ms);
    w.field("checkpoint_interval", checkpoint_interval);
    w.endObject();

    w.field("runtime_s", runtime_s);
    w.field("energy_wh", energy_wh);
    writeCounters(w, counters);
    w.field("fault_summary", fault_summary);

    w.beginArray("results");
    for (const ResultRow& r : results) {
        w.beginObject();
        w.field("key", r.key);
        w.field("value", r.value);
        w.field("has_bound", r.has_bound);
        if (r.has_bound) {
            w.field("lower", r.lower);
            w.field("upper", r.upper);
            w.field("bound", r.bound);
            w.field("relative_bound", r.relative_bound);
        }
        w.endObject();
    }
    w.endArray();

    if (headline.present) {
        w.beginObject("headline");
        w.field("key", headline.key);
        w.field("bound", headline.bound);
        w.field("relative_bound", headline.relative_bound);
        w.endObject();
    } else {
        w.nullField("headline");
    }

    w.beginArray("waves");
    for (const WaveRow& row : waves) {
        w.beginObject();
        w.field("wave", row.wave);
        w.beginObject("plan");
        w.field("maps_started", row.maps_started);
        w.field("approximate_maps", row.approximate_maps);
        w.field("sampling_ratio_min", row.sampling_ratio_min);
        w.field("sampling_ratio_max", row.sampling_ratio_max);
        w.endObject();
        w.beginObject("outcome");
        w.field("completed", row.completed);
        w.field("killed", row.killed);
        w.field("absorbed", row.absorbed);
        w.field("failed_attempts", row.failed_attempts);
        w.field("items_total", row.items_total);
        w.field("items_processed", row.items_processed);
        w.field("records_skipped", row.records_skipped);
        w.field("first_start_s", row.first_start_s);
        w.field("last_finish_s", row.last_finish_s);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.field("dropped_never_started", dropped_never_started);

    w.beginArray("replans");
    for (const ReplanRecord& r : replans) {
        w.beginObject();
        w.field("sim_time_s", r.sim_time);
        w.field("trigger", r.trigger);
        w.field("completed", r.completed);
        w.field("running", r.running);
        w.field("pending", r.pending);
        w.field("feasible", r.feasible);
        w.field("maps_to_run", r.maps_to_run);
        w.field("sampling_ratio", r.sampling_ratio);
        w.field("predicted_error", r.predicted_error);
        w.field("target_error", r.target_error);
        w.field("predicted_ret_s", r.predicted_ret);
        w.field("failure_overhead_s", r.failure_overhead);
        w.endObject();
    }
    w.endArray();

    w.beginObject("metrics");
    w.beginArray("wave_snapshots");
    for (const MetricsRegistry::WaveSnapshot& s : metric_snapshots) {
        w.beginObject();
        w.field("wave", s.wave);
        w.field("sim_time_s", s.sim_time);
        w.beginObject("counters");
        for (const auto& [name, v] : s.counters) {
            w.field(name, v);
        }
        w.endObject();
        w.beginObject("gauges");
        for (const auto& [name, v] : s.gauges) {
            w.field(name, v);
        }
        w.endObject();
        w.beginObject("histograms");
        for (const auto& [name, h] : s.histograms) {
            w.beginObject(name);
            w.field("count", h.count);
            w.field("sum", h.sum);
            w.field("min", h.min);
            w.field("max", h.max);
            w.endObject();
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();

    // The only non-deterministic bytes in the report. Every key starts
    // with "wall_" and owns its line, so `grep -v '"wall_'` yields a
    // byte-comparable document.
    w.beginObject("wall_clock");
    w.field("wall_generated_unix_ms",
            static_cast<int64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count()));
    w.endObject();

    w.endObject();
    std::string out = w.str();
    out.push_back('\n');
    return out;
}

}  // namespace approxhadoop::obs
