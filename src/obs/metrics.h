#ifndef APPROXHADOOP_OBS_METRICS_H_
#define APPROXHADOOP_OBS_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace approxhadoop::obs {

/**
 * Named counter/gauge/histogram instruments with per-wave snapshots.
 *
 * Supersedes ad-hoc reads of mr::Counters for observability purposes:
 * the job publishes its scheduler state and monotone counts here at
 * every wave boundary, and snapshotWave() captures all instrument values
 * into an immutable row that the JSON job report serializes.
 *
 * Instruments live in std::map keyed by name, so snapshot serialization
 * order is deterministic. Driver-thread-only, like Counters.
 */
class MetricsRegistry
{
  public:
    /** Monotone event count. */
    class Counter
    {
      public:
        void increment(uint64_t delta = 1) { value_ += delta; }
        /** Raises the counter to `total` (mirror of an external count). */
        void
        advanceTo(uint64_t total)
        {
            value_ = std::max(value_, total);
        }
        uint64_t value() const { return value_; }

      private:
        uint64_t value_ = 0;
    };

    /** Point-in-time value (may go up or down). */
    class Gauge
    {
      public:
        void set(double v) { value_ = v; }
        double value() const { return value_; }

      private:
        double value_ = 0.0;
    };

    /** Streaming distribution summary (count/sum/min/max). */
    class Histogram
    {
      public:
        void
        observe(double x)
        {
            ++count_;
            sum_ += x;
            min_ = std::min(min_, x);
            max_ = std::max(max_, x);
        }
        uint64_t count() const { return count_; }
        double sum() const { return sum_; }
        double min() const { return count_ == 0 ? 0.0 : min_; }
        double max() const { return count_ == 0 ? 0.0 : max_; }
        double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

      private:
        uint64_t count_ = 0;
        double sum_ = 0.0;
        double min_ = std::numeric_limits<double>::infinity();
        double max_ = -std::numeric_limits<double>::infinity();
    };

    struct HistogramStats
    {
        uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    /** All instrument values at one wave boundary. */
    struct WaveSnapshot
    {
        int wave = 0;
        double sim_time = 0.0;
        std::map<std::string, uint64_t> counters;
        std::map<std::string, double> gauges;
        std::map<std::string, HistogramStats> histograms;
    };

    /** Finds or creates the named instrument. */
    Counter& counter(const std::string& name) { return counters_[name]; }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    Histogram& histogram(const std::string& name) { return histograms_[name]; }

    /** Captures every instrument's current value as the row for `wave`. */
    void snapshotWave(int wave, double sim_time);

    const std::vector<WaveSnapshot>& waveSnapshots() const
    {
        return snapshots_;
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
    std::vector<WaveSnapshot> snapshots_;
};

}  // namespace approxhadoop::obs

#endif  // APPROXHADOOP_OBS_METRICS_H_
