#ifndef APPROXHADOOP_OBS_OBSERVABILITY_H_
#define APPROXHADOOP_OBS_OBSERVABILITY_H_

#include "obs/metrics.h"
#include "obs/trace.h"

namespace approxhadoop::obs {

/**
 * Everything a job run records about itself: the lifecycle event trace
 * and the per-wave metric snapshots. Attach one to a job via
 * mr::Job::setObservability() (or core::ApproxJobRunner::
 * setObservability()) before run(); the object must outlive the run.
 *
 * Observability is strictly additive: attaching it never changes the
 * simulated timeline, the scheduler, or the results.
 */
struct Observability
{
    TraceRecorder trace;
    MetricsRegistry metrics;
};

}  // namespace approxhadoop::obs

#endif  // APPROXHADOOP_OBS_OBSERVABILITY_H_
