#include "obs/metrics.h"

namespace approxhadoop::obs {

void
MetricsRegistry::snapshotWave(int wave, double sim_time)
{
    WaveSnapshot snap;
    snap.wave = wave;
    snap.sim_time = sim_time;
    for (const auto& [name, c] : counters_) {
        snap.counters.emplace(name, c.value());
    }
    for (const auto& [name, g] : gauges_) {
        snap.gauges.emplace(name, g.value());
    }
    for (const auto& [name, h] : histograms_) {
        snap.histograms.emplace(
            name, HistogramStats{h.count(), h.sum(), h.min(), h.max()});
    }
    snapshots_.push_back(std::move(snap));
}

}  // namespace approxhadoop::obs
