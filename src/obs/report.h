#ifndef APPROXHADOOP_OBS_REPORT_H_
#define APPROXHADOOP_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/counters.h"
#include "mapreduce/job.h"
#include "mapreduce/job_config.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace approxhadoop::obs {

struct Observability;

/**
 * Machine-readable summary of one job run: results + confidence
 * intervals, per-wave plan/outcome pairs, the controller's re-plan log,
 * fault summary, and energy/runtime. `approxrun --report-json FILE`
 * writes its JSON form; the bench harness (bench/sweep.h) and the chaos
 * harness consume it instead of re-deriving fields from JobResult.
 *
 * toJson() is byte-deterministic for a fixed (seed, thread count) run,
 * except for the "wall_clock" object, whose keys all start with "wall_"
 * and sit on their own lines so `grep -v '"wall_'` strips them for
 * byte-comparison in CI.
 */
struct JobReport
{
    static constexpr const char* kSchema = "approxhadoop-job-report/1";

    struct ResultRow
    {
        std::string key;
        double value = 0.0;
        bool has_bound = false;
        double lower = 0.0;
        double upper = 0.0;
        /** CI half-width (errorBound()). */
        double bound = 0.0;
        double relative_bound = 0.0;
    };

    /**
     * The paper's headline key: maximum predicted absolute error among
     * keys with finite bounds (same selection as
     * mr::JobResult::headlineErrorAgainst()).
     */
    struct Headline
    {
        bool present = false;
        std::string key;
        double bound = 0.0;
        double relative_bound = 0.0;
    };

    /** Plan/outcome pair for one map wave. */
    struct WaveRow
    {
        int wave = 0;
        /** Plan: what the scheduler/controller committed this wave to. */
        uint64_t maps_started = 0;
        uint64_t approximate_maps = 0;
        double sampling_ratio_min = 1.0;
        double sampling_ratio_max = 1.0;
        /** Outcome: terminal states and work actually done. */
        uint64_t completed = 0;
        uint64_t killed = 0;
        uint64_t absorbed = 0;
        uint64_t failed_attempts = 0;
        uint64_t items_total = 0;
        uint64_t items_processed = 0;
        uint64_t records_skipped = 0;
        double first_start_s = 0.0;
        double last_finish_s = 0.0;
    };

    std::string app;
    /** "ok" or "failed". */
    std::string status = "ok";
    std::string error;

    /** Config snapshot (the determinism-relevant knobs). */
    std::string job_name;
    uint64_t seed = 0;
    uint32_t threads = 1;
    uint32_t reducers = 1;
    std::string failure_mode;
    std::string fault_plan;
    /** Fleet spec the job ran on (cluster-grammar string). */
    std::string cluster;
    double heartbeat_interval_ms = 0.0;
    double task_timeout_ms = 0.0;
    uint64_t checkpoint_interval = 0;

    double runtime_s = 0.0;
    double energy_wh = 0.0;
    mr::Counters counters;
    std::string fault_summary;

    std::vector<ResultRow> results;
    Headline headline;
    std::vector<WaveRow> waves;
    /** Maps dropped before ever starting (no wave assignment). */
    uint64_t dropped_never_started = 0;
    std::vector<ReplanRecord> replans;
    std::vector<MetricsRegistry::WaveSnapshot> metric_snapshots;

    /** Builds the report for a completed run; obs may be null. */
    static JobReport build(const std::string& app,
                           const mr::JobConfig& config,
                           const mr::JobResult& result,
                           const Observability* obs);

    /** Builds a status="failed" report from a JobFailedError. */
    static JobReport fromFailure(const std::string& app,
                                 const mr::JobConfig& config,
                                 const std::string& error,
                                 const mr::Counters& counters,
                                 const Observability* obs);

    std::string toJson() const;
};

}  // namespace approxhadoop::obs

#endif  // APPROXHADOOP_OBS_REPORT_H_
