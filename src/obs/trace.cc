#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace approxhadoop::obs {

namespace {

constexpr double kUsPerSimSecond = 1e6;

std::string
num(double v)
{
    return JsonWriter::number(v);
}

std::string
num(uint64_t v)
{
    return JsonWriter::number(v);
}

}  // namespace

TraceRecorder::TraceRecorder() : start_wall_(std::chrono::steady_clock::now())
{
}

double
TraceRecorder::wallMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_wall_)
        .count();
}

int
TraceRecorder::allocLane(uint32_t server)
{
    if (server >= lanes_.size()) {
        lanes_.resize(server + 1);
    }
    auto& lanes = lanes_[server];
    for (size_t i = 0; i < lanes.size(); ++i) {
        if (!lanes[i]) {
            lanes[i] = true;
            return static_cast<int>(i);
        }
    }
    lanes.push_back(true);
    return static_cast<int>(lanes.size() - 1);
}

void
TraceRecorder::instant(std::string name, const char* category, uint32_t pid,
                       int tid, double now,
                       std::vector<std::pair<std::string, std::string>> args)
{
    Event e;
    e.name = std::move(name);
    e.category = category;
    e.phase = 'i';
    e.pid = pid;
    e.tid = tid;
    e.ts_us = now * kUsPerSimSecond;
    e.wall_ms = wallMs();
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceRecorder::metadata(const char* what, uint32_t pid, int tid,
                        const std::string& label)
{
    Event e;
    e.name = what;
    e.category = "metadata";
    e.phase = 'M';
    e.pid = pid;
    e.tid = tid;
    e.args.emplace_back("name", JsonWriter::quoted(label));
    events_.push_back(std::move(e));
}

void
TraceRecorder::beginJob(const std::string& name, uint32_t num_servers,
                        int map_slots_per_server, uint32_t num_reducers,
                        double now)
{
    num_servers_ = num_servers;
    map_slots_ = map_slots_per_server;
    lanes_.assign(num_servers, std::vector<bool>());
    for (uint32_t s = 0; s < num_servers; ++s) {
        metadata("process_name", s, 0, "server " + std::to_string(s));
        for (int slot = 0; slot < map_slots_per_server; ++slot) {
            metadata("thread_name", s, slot,
                     "map slot " + std::to_string(slot));
        }
    }
    metadata("process_name", jobtrackerPid(), 0, "jobtracker");
    metadata("thread_name", jobtrackerPid(), 0, "controller");
    instant("job-start", "job", jobtrackerPid(), 0, now,
            {{"job", JsonWriter::quoted(name)},
             {"reducers", num(static_cast<uint64_t>(num_reducers))}});
}

void
TraceRecorder::endJob(double now)
{
    instant("job-end", "job", jobtrackerPid(), 0, now, {});
}

void
TraceRecorder::mapAttemptStart(uint64_t task, size_t attempt, uint32_t server,
                               int wave, double sampling_ratio,
                               bool approximate, double now)
{
    OpenAttempt open;
    open.server = server;
    open.lane = allocLane(server);
    open.start = now;
    open.wave = wave;
    open_maps_[{task, attempt}] = open;
    // Start args are frozen into the 'X' event when the attempt closes;
    // record them as an instant so an attempt that never closes (job
    // failure mid-run) still shows up.
    instant("map-start", "map", server, open.lane, now,
            {{"task", num(task)},
             {"attempt", num(static_cast<uint64_t>(attempt))},
             {"wave", num(static_cast<uint64_t>(wave < 0 ? 0 : wave))},
             {"sampling_ratio", num(sampling_ratio)},
             {"approximate", approximate ? "true" : "false"}});
}

void
TraceRecorder::mapAttemptFinish(uint64_t task, size_t attempt,
                                const char* outcome, double now)
{
    auto it = open_maps_.find({task, attempt});
    if (it == open_maps_.end()) {
        return;
    }
    const OpenAttempt open = it->second;
    open_maps_.erase(it);
    if (open.server < lanes_.size() &&
        static_cast<size_t>(open.lane) < lanes_[open.server].size()) {
        lanes_[open.server][open.lane] = false;
    }
    Event e;
    e.name = "map " + std::to_string(task) + "." + std::to_string(attempt);
    e.category = "map";
    e.phase = 'X';
    e.pid = open.server;
    e.tid = open.lane;
    e.ts_us = open.start * kUsPerSimSecond;
    e.dur_us = (now - open.start) * kUsPerSimSecond;
    e.wall_ms = wallMs();
    e.args.emplace_back("task", num(task));
    e.args.emplace_back("attempt", num(static_cast<uint64_t>(attempt)));
    e.args.emplace_back("wave",
                        num(static_cast<uint64_t>(open.wave < 0 ? 0
                                                                : open.wave)));
    e.args.emplace_back("outcome", JsonWriter::quoted(outcome));
    events_.push_back(std::move(e));
}

void
TraceRecorder::mapAttemptCrash(uint64_t task, size_t attempt, double now)
{
    auto it = open_maps_.find({task, attempt});
    uint32_t pid = it != open_maps_.end() ? it->second.server
                                          : jobtrackerPid();
    int tid = it != open_maps_.end() ? it->second.lane : 0;
    instant("map-crash", "fault", pid, tid, now,
            {{"task", num(task)},
             {"attempt", num(static_cast<uint64_t>(attempt))}});
}

void
TraceRecorder::heartbeatTimeout(uint64_t task, size_t attempt, double waited,
                                double now)
{
    instant("heartbeat-timeout", "fault", jobtrackerPid(), 0, now,
            {{"task", num(task)},
             {"attempt", num(static_cast<uint64_t>(attempt))},
             {"waited_s", num(waited)}});
}

void
TraceRecorder::reducerPlaced(uint32_t reducer, uint32_t server, double now)
{
    int lane = map_slots_ + reduce_ordinals_[server]++;
    open_reducers_[reducer] = {server, now};
    metadata("thread_name", server, lane,
             "reducer " + std::to_string(reducer));
    reduce_lanes_[reducer] = lane;
    instant("reduce-placed", "reduce", server, lane, now,
            {{"reducer", num(static_cast<uint64_t>(reducer))}});
}

void
TraceRecorder::reducerCheckpoint(uint32_t reducer, uint64_t delivered,
                                 double now)
{
    auto it = open_reducers_.find(reducer);
    if (it == open_reducers_.end()) {
        return;
    }
    instant("reduce-checkpoint", "reduce", it->second.first,
            reduce_lanes_[reducer], now,
            {{"reducer", num(static_cast<uint64_t>(reducer))},
             {"delivered", num(delivered)}});
}

void
TraceRecorder::reducerRestart(uint32_t reducer, uint64_t attempt,
                              uint64_t replayed, double now)
{
    auto it = open_reducers_.find(reducer);
    if (it == open_reducers_.end()) {
        return;
    }
    instant("reduce-restart", "fault", it->second.first,
            reduce_lanes_[reducer], now,
            {{"reducer", num(static_cast<uint64_t>(reducer))},
             {"attempt", num(attempt)},
             {"replayed_chunks", num(replayed)}});
}

void
TraceRecorder::reducerFinish(uint32_t reducer, uint64_t records, double now)
{
    auto it = open_reducers_.find(reducer);
    if (it == open_reducers_.end()) {
        return;
    }
    auto [server, start] = it->second;
    open_reducers_.erase(it);
    Event e;
    e.name = "reduce " + std::to_string(reducer);
    e.category = "reduce";
    e.phase = 'X';
    e.pid = server;
    e.tid = reduce_lanes_[reducer];
    e.ts_us = start * kUsPerSimSecond;
    e.dur_us = (now - start) * kUsPerSimSecond;
    e.wall_ms = wallMs();
    e.args.emplace_back("reducer", num(static_cast<uint64_t>(reducer)));
    e.args.emplace_back("records", num(records));
    events_.push_back(std::move(e));
}

void
TraceRecorder::shuffleCorrupt(uint64_t task, uint32_t partition, bool refetched,
                              double now)
{
    instant("shuffle-corrupt", "fault", jobtrackerPid(), 0, now,
            {{"task", num(task)},
             {"partition", num(static_cast<uint64_t>(partition))},
             {"refetched", refetched ? "true" : "false"}});
}

void
TraceRecorder::mapOutputLost(uint64_t task, double now)
{
    instant("map-output-lost", "fault", jobtrackerPid(), 0, now,
            {{"task", num(task)}});
}

void
TraceRecorder::taskAbsorbed(uint64_t task, double now)
{
    instant("task-absorbed", "controller", jobtrackerPid(), 0, now,
            {{"task", num(task)}});
}

void
TraceRecorder::retryScheduled(uint64_t task, double delay, double now)
{
    instant("retry-scheduled", "fault", jobtrackerPid(), 0, now,
            {{"task", num(task)}, {"delay_s", num(delay)}});
}

void
TraceRecorder::serverCrash(uint32_t server, double now)
{
    instant("server-crash", "fault", jobtrackerPid(), 0, now,
            {{"server", num(static_cast<uint64_t>(server))}});
}

void
TraceRecorder::serverRepair(uint32_t server, double now)
{
    instant("server-repair", "fault", jobtrackerPid(), 0, now,
            {{"server", num(static_cast<uint64_t>(server))}});
}

void
TraceRecorder::revocationStorm(uint32_t count, double now)
{
    instant("revocation-storm", "fault", jobtrackerPid(), 0, now,
            {{"count", num(static_cast<uint64_t>(count))}});
}

void
TraceRecorder::serversAdded(uint32_t count, uint32_t first_id,
                            const std::string& server_class, double now)
{
    for (uint32_t s = first_id; s < first_id + count; ++s) {
        metadata("process_name", s, 0,
                 "server " + std::to_string(s) + " (" + server_class + ")");
    }
    instant("servers-added", "fleet", jobtrackerPid(), 0, now,
            {{"count", num(static_cast<uint64_t>(count))},
             {"first_id", num(static_cast<uint64_t>(first_id))},
             {"class", JsonWriter::quoted(server_class)}});
}

void
TraceRecorder::serverDraining(uint32_t server, double now)
{
    instant("server-draining", "fleet", jobtrackerPid(), 0, now,
            {{"server", num(static_cast<uint64_t>(server))}});
}

void
TraceRecorder::serverRetired(uint32_t server, double now)
{
    instant("server-retired", "fleet", jobtrackerPid(), 0, now,
            {{"server", num(static_cast<uint64_t>(server))}});
}

void
TraceRecorder::waveComplete(int wave, double now)
{
    instant("wave-complete", "job", jobtrackerPid(), 0, now,
            {{"wave", num(static_cast<uint64_t>(wave < 0 ? 0 : wave))}});
}

void
TraceRecorder::mapPhaseDone(double now)
{
    instant("map-phase-done", "job", jobtrackerPid(), 0, now, {});
}

void
TraceRecorder::recordReplan(const ReplanRecord& r)
{
    replans_.push_back(r);
    instant("replan", "controller", jobtrackerPid(), 0, r.sim_time,
            {{"trigger", JsonWriter::quoted(r.trigger)},
             {"completed", num(r.completed)},
             {"running", num(r.running)},
             {"pending", num(r.pending)},
             {"feasible", r.feasible ? "true" : "false"},
             {"maps_to_run", num(r.maps_to_run)},
             {"sampling_ratio", num(r.sampling_ratio)},
             {"predicted_error", num(r.predicted_error)},
             {"target_error", num(r.target_error)},
             {"predicted_ret_s", num(r.predicted_ret)},
             {"failure_overhead_s", num(r.failure_overhead)}});
}

std::string
TraceRecorder::toChromeJson() const
{
    std::vector<const Event*> sorted;
    sorted.reserve(events_.size());
    for (const Event& e : events_) {
        sorted.push_back(&e);
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event* a, const Event* b) {
                         // Metadata first, then (pid, tid, ts).
                         if ((a->phase == 'M') != (b->phase == 'M')) {
                             return a->phase == 'M';
                         }
                         if (a->pid != b->pid) {
                             return a->pid < b->pid;
                         }
                         if (a->tid != b->tid) {
                             return a->tid < b->tid;
                         }
                         return a->ts_us < b->ts_us;
                     });

    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    for (const Event* e : sorted) {
        if (!first) {
            out += ",\n";
        }
        first = false;
        out += "{\"name\": " + JsonWriter::quoted(e->name);
        out += ", \"cat\": " + JsonWriter::quoted(e->category);
        out += ", \"ph\": \"";
        out.push_back(e->phase);
        out += "\", \"pid\": " + JsonWriter::number(
                                     static_cast<uint64_t>(e->pid));
        out += ", \"tid\": " +
               JsonWriter::number(static_cast<int64_t>(e->tid));
        if (e->phase != 'M') {
            out += ", \"ts\": " + JsonWriter::number(e->ts_us);
        }
        if (e->phase == 'X') {
            out += ", \"dur\": " + JsonWriter::number(e->dur_us);
        }
        if (e->phase == 'i') {
            out += ", \"s\": \"t\"";
        }
        out += ", \"args\": {";
        bool first_arg = true;
        for (const auto& [k, v] : e->args) {
            if (!first_arg) {
                out += ", ";
            }
            first_arg = false;
            out += JsonWriter::quoted(k) + ": " + v;
        }
        if (e->phase != 'M') {
            if (!first_arg) {
                out += ", ";
            }
            out += "\"wall_ms\": " + JsonWriter::number(e->wall_ms);
        }
        out += "}}";
    }
    out += "\n]}\n";
    return out;
}

}  // namespace approxhadoop::obs
