#ifndef APPROXHADOOP_OBS_TRACE_H_
#define APPROXHADOOP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace approxhadoop::obs {

/**
 * One controller planning decision (pilot fit, wave re-plan, target
 * achieved, or a static user-ratio drop). Records the scheduler state
 * the controller saw and the plan it chose; these rows feed both the
 * Chrome trace ("replan" instants on the jobtracker track) and the
 * "replans" array of the JSON job report.
 *
 * All fields are simulated-time quantities, so the record sequence is
 * bit-identical across runs and thread counts.
 */
struct ReplanRecord
{
    double sim_time = 0.0;
    /** "pilot" | "replan" | "achieved" | "user-drop". */
    std::string trigger;
    uint64_t completed = 0;
    uint64_t running = 0;
    /** Pending maps at decision time, before any drop this plan makes. */
    uint64_t pending = 0;
    bool feasible = false;
    /** Pending maps the plan keeps (the rest are dropped). */
    uint64_t maps_to_run = 0;
    /** Sampling ratio applied to maps started after this decision. */
    double sampling_ratio = 1.0;
    /** Predicted worst-key CI half-width under the plan (absolute). */
    double predicted_error = 0.0;
    /** Absolute error target for the binding key (0 if not applicable). */
    double target_error = 0.0;
    /** Predicted remaining execution time, seconds. */
    double predicted_ret = 0.0;
    /** Failure-overhead term of the RET objective, seconds per map. */
    double failure_overhead = 0.0;
};

/**
 * Records structured lifecycle events of one job run and exports them as
 * Chrome trace-event JSON (load in chrome://tracing or ui.perfetto.dev).
 *
 * Track layout: one trace process per simulated server (pid = server
 * id); within a server, one thread row per map slot (tid = 0 ..
 * map_slots-1, lanes allocated lowest-free at attempt start) and one row
 * per hosted reducer (tid = map_slots + ordinal). A virtual "jobtracker"
 * process (fixed high pid, so servers joining mid-job never collide
 * with it) carries controller re-plans, wave boundaries, server
 * crash/repair, fleet-membership and shuffle-integrity instants.
 *
 * Timestamps are simulated microseconds (sim seconds x 1e6); each event
 * also carries the wall-clock milliseconds since recorder construction
 * as an arg, satisfying the "both simulated and wall-clock" contract
 * without perturbing the simulated timeline.
 *
 * Like Counters, this class is driver-thread-only: the simulator invokes
 * every hook from the event loop thread.
 */
class TraceRecorder
{
  public:
    struct Event
    {
        std::string name;
        std::string category;
        char phase = 'i';  ///< 'X' complete, 'i' instant, 'M' metadata.
        uint32_t pid = 0;
        int tid = 0;
        double ts_us = 0.0;
        double dur_us = 0.0;  ///< 'X' only.
        double wall_ms = 0.0;
        /** Pre-rendered arg values (JSON fragments: numbers or strings). */
        std::vector<std::pair<std::string, std::string>> args;
    };

    TraceRecorder();

    /** Declares the cluster shape; emits track-naming metadata. */
    void beginJob(const std::string& name, uint32_t num_servers,
                  int map_slots_per_server, uint32_t num_reducers, double now);
    void endJob(double now);

    void mapAttemptStart(uint64_t task, size_t attempt, uint32_t server,
                         int wave, double sampling_ratio, bool approximate,
                         double now);
    /** Closes the attempt's slot lane; outcome names the 'X' event. */
    void mapAttemptFinish(uint64_t task, size_t attempt, const char* outcome,
                          double now);
    /** Silent crash: instant on the lane; the slot stays occupied (zombie)
        until heartbeat expiry closes it via mapAttemptFinish. */
    void mapAttemptCrash(uint64_t task, size_t attempt, double now);
    void heartbeatTimeout(uint64_t task, size_t attempt, double waited,
                          double now);

    void reducerPlaced(uint32_t reducer, uint32_t server, double now);
    void reducerCheckpoint(uint32_t reducer, uint64_t delivered, double now);
    void reducerRestart(uint32_t reducer, uint64_t attempt, uint64_t replayed,
                        double now);
    void reducerFinish(uint32_t reducer, uint64_t records, double now);

    /** A shuffle chunk failed verification; refetched says whether a
        retry was attempted (false = map output lost). */
    void shuffleCorrupt(uint64_t task, uint32_t partition, bool refetched,
                        double now);
    void mapOutputLost(uint64_t task, double now);
    void taskAbsorbed(uint64_t task, double now);
    void retryScheduled(uint64_t task, double delay, double now);

    void serverCrash(uint32_t server, double now);
    void serverRepair(uint32_t server, double now);
    /** A correlated revocation storm fired, killing @p count servers
        (each victim also gets its own server-crash instant). */
    void revocationStorm(uint32_t count, double now);
    /** Mid-job scale-out: @p count servers of @p server_class joined,
        with ids first_id .. first_id+count-1; names their trace tracks. */
    void serversAdded(uint32_t count, uint32_t first_id,
                      const std::string& server_class, double now);
    void serverDraining(uint32_t server, double now);
    void serverRetired(uint32_t server, double now);
    void waveComplete(int wave, double now);
    void mapPhaseDone(double now);

    void recordReplan(const ReplanRecord& r);

    const std::vector<ReplanRecord>& replans() const { return replans_; }
    const std::vector<Event>& events() const { return events_; }

    /**
     * Exports {"traceEvents": [...]} with events sorted by
     * (pid, tid, ts), so simulated timestamps are monotone within each
     * track row. Not byte-deterministic across runs (wall_ms args);
     * the job report is the deterministic artifact.
     */
    std::string toChromeJson() const;

  private:
    struct OpenAttempt
    {
        uint32_t server = 0;
        int lane = 0;
        double start = 0.0;
        int wave = -1;
    };

    double wallMs() const;
    int allocLane(uint32_t server);
    void instant(std::string name, const char* category, uint32_t pid, int tid,
                 double now,
                 std::vector<std::pair<std::string, std::string>> args);
    void metadata(const char* what, uint32_t pid, int tid,
                  const std::string& label);
    /** Far above any server id, including mid-job joiners. */
    uint32_t jobtrackerPid() const { return 1u << 20; }

    std::chrono::steady_clock::time_point start_wall_;
    uint32_t num_servers_ = 0;
    int map_slots_ = 0;
    /** lanes_[server][lane] = occupied. */
    std::vector<std::vector<bool>> lanes_;
    std::map<std::pair<uint64_t, size_t>, OpenAttempt> open_maps_;
    std::map<uint32_t, std::pair<uint32_t, double>> open_reducers_;
    /** Per-server count of reducers hosted so far (reduce lane ordinal). */
    std::map<uint32_t, int> reduce_ordinals_;
    /** reducer id -> its tid (map_slots_ + placement ordinal). */
    std::map<uint32_t, int> reduce_lanes_;
    std::vector<Event> events_;
    std::vector<ReplanRecord> replans_;
};

}  // namespace approxhadoop::obs

#endif  // APPROXHADOOP_OBS_TRACE_H_
