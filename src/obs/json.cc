#include "obs/json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace approxhadoop::obs {

std::string
JsonWriter::quoted(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    assert(ec == std::errc());
    return std::string(buf, ptr);
}

std::string
JsonWriter::number(uint64_t v)
{
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    assert(ec == std::errc());
    return std::string(buf, ptr);
}

std::string
JsonWriter::number(int64_t v)
{
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    assert(ec == std::errc());
    return std::string(buf, ptr);
}

void
JsonWriter::indent()
{
    out_.push_back('\n');
    out_.append(static_cast<size_t>(depth_) * 2, ' ');
}

void
JsonWriter::separate()
{
    if (need_comma_) {
        out_.push_back(',');
    }
    if (depth_ > 0) {
        indent();
    }
    need_comma_ = true;
}

void
JsonWriter::key(const std::string& k)
{
    separate();
    out_ += quoted(k);
    out_ += ": ";
}

void
JsonWriter::beginObject()
{
    separate();
    out_.push_back('{');
    ++depth_;
    need_comma_ = false;
}

void
JsonWriter::endObject()
{
    --depth_;
    indent();
    out_.push_back('}');
    need_comma_ = true;
}

void
JsonWriter::beginArray()
{
    separate();
    out_.push_back('[');
    ++depth_;
    need_comma_ = false;
}

void
JsonWriter::endArray()
{
    --depth_;
    indent();
    out_.push_back(']');
    need_comma_ = true;
}

void
JsonWriter::beginObject(const std::string& k)
{
    key(k);
    out_.push_back('{');
    ++depth_;
    need_comma_ = false;
}

void
JsonWriter::beginArray(const std::string& k)
{
    key(k);
    out_.push_back('[');
    ++depth_;
    need_comma_ = false;
}

void
JsonWriter::field(const std::string& k, const std::string& value)
{
    key(k);
    out_ += quoted(value);
}

void
JsonWriter::field(const std::string& k, const char* value)
{
    field(k, std::string(value));
}

void
JsonWriter::field(const std::string& k, double value)
{
    key(k);
    out_ += number(value);
}

void
JsonWriter::field(const std::string& k, uint64_t value)
{
    key(k);
    out_ += number(value);
}

void
JsonWriter::field(const std::string& k, int64_t value)
{
    key(k);
    out_ += number(value);
}

void
JsonWriter::field(const std::string& k, int value)
{
    field(k, static_cast<int64_t>(value));
}

void
JsonWriter::field(const std::string& k, unsigned value)
{
    field(k, static_cast<uint64_t>(value));
}

void
JsonWriter::field(const std::string& k, bool value)
{
    key(k);
    out_ += value ? "true" : "false";
}

void
JsonWriter::nullField(const std::string& k)
{
    key(k);
    out_ += "null";
}

void
JsonWriter::element(const std::string& value)
{
    separate();
    out_ += quoted(value);
}

void
JsonWriter::element(double value)
{
    separate();
    out_ += number(value);
}

void
JsonWriter::element(uint64_t value)
{
    separate();
    out_ += number(value);
}

const JsonValue&
JsonValue::at(const std::string& k) const
{
    static const JsonValue null_value;
    auto it = object.find(k);
    return it == object.end() ? null_value : it->second;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    std::optional<JsonValue>
    run(std::string* error)
    {
        JsonValue v;
        if (!value(v)) {
            fail("invalid value");
        }
        skipSpace();
        if (!failed_ && pos_ != text_.size()) {
            fail("trailing characters");
        }
        if (failed_) {
            if (error != nullptr) {
                *error = error_;
            }
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const std::string& why)
    {
        if (!failed_) {
            failed_ = true;
            error_ = why + " at offset " + std::to_string(pos_);
        }
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char* word)
    {
        size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    bool
    value(JsonValue& out)
    {
        skipSpace();
        if (pos_ >= text_.size()) {
            return false;
        }
        char c = text_[pos_];
        switch (c) {
        case '{': return object(out);
        case '[': return array(out);
        case '"':
            out.type = JsonValue::Type::kString;
            return string(out.string);
        case 't':
            out.type = JsonValue::Type::kBool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.type = JsonValue::Type::kBool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.type = JsonValue::Type::kNull;
            return literal("null");
        default: return numberValue(out);
        }
    }

    bool
    string(std::string& out)
    {
        if (!consume('"')) {
            return false;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"') {
                return true;
            }
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    return false;
                }
                char esc = text_[pos_++];
                switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        return false;
                    }
                    unsigned code = 0;
                    auto [ptr, ec] = std::from_chars(
                        text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
                    if (ec != std::errc() || ptr != text_.data() + pos_ + 4) {
                        return false;
                    }
                    pos_ += 4;
                    // The emitter only escapes control bytes; decode the
                    // BMP subset as UTF-8 for completeness.
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(
                            static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                }
                default: return false;
                }
            } else {
                out.push_back(c);
            }
        }
        return false;
    }

    bool
    numberValue(JsonValue& out)
    {
        skipSpace();
        size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            ++pos_;
        }
        if (pos_ == start) {
            return false;
        }
        double v = 0.0;
        auto [ptr, ec] =
            std::from_chars(text_.data() + start, text_.data() + pos_, v);
        if (ec != std::errc() || ptr != text_.data() + pos_) {
            return false;
        }
        out.type = JsonValue::Type::kNumber;
        out.number = v;
        return true;
    }

    bool
    object(JsonValue& out)
    {
        if (!consume('{')) {
            return false;
        }
        out.type = JsonValue::Type::kObject;
        skipSpace();
        if (consume('}')) {
            return true;
        }
        while (true) {
            skipSpace();
            std::string k;
            if (!string(k)) {
                return false;
            }
            if (!consume(':')) {
                return false;
            }
            JsonValue v;
            if (!value(v)) {
                return false;
            }
            out.object.emplace(std::move(k), std::move(v));
            if (consume('}')) {
                return true;
            }
            if (!consume(',')) {
                return false;
            }
        }
    }

    bool
    array(JsonValue& out)
    {
        if (!consume('[')) {
            return false;
        }
        out.type = JsonValue::Type::kArray;
        skipSpace();
        if (consume(']')) {
            return true;
        }
        while (true) {
            JsonValue v;
            if (!value(v)) {
                return false;
            }
            out.array.push_back(std::move(v));
            if (consume(']')) {
                return true;
            }
            if (!consume(',')) {
                return false;
            }
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

}  // namespace

std::optional<JsonValue>
parseJson(const std::string& text, std::string* error)
{
    return Parser(text).run(error);
}

}  // namespace approxhadoop::obs
