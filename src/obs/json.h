#ifndef APPROXHADOOP_OBS_JSON_H_
#define APPROXHADOOP_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace approxhadoop::obs {

/**
 * Minimal JSON emitter with deterministic number formatting.
 *
 * Doubles are rendered with std::to_chars (shortest round-trip form), so
 * the same value always produces the same bytes on every run and every
 * thread count — the job report's byte-determinism contract rests on
 * this. Non-finite doubles are emitted as null (JSON has no Inf/NaN).
 *
 * Output is pretty-printed, one key per line, so that wall-clock-bearing
 * lines can be stripped with a line filter (see JobReport::toJson()).
 */
class JsonWriter
{
  public:
    /** Serializes a string with JSON escaping (quotes included). */
    static std::string quoted(const std::string& s);
    /** Deterministic shortest-round-trip rendering; null if non-finite. */
    static std::string number(double v);
    static std::string number(uint64_t v);
    static std::string number(int64_t v);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    /** Starts `"key": {` — follow with fields and endObject(). */
    void beginObject(const std::string& key);
    /** Starts `"key": [` — follow with values and endArray(). */
    void beginArray(const std::string& key);

    void field(const std::string& key, const std::string& value);
    void field(const std::string& key, const char* value);
    void field(const std::string& key, double value);
    void field(const std::string& key, uint64_t value);
    void field(const std::string& key, int64_t value);
    void field(const std::string& key, int value);
    void field(const std::string& key, unsigned value);
    void field(const std::string& key, bool value);
    void nullField(const std::string& key);

    /** Array elements. */
    void element(const std::string& value);
    void element(double value);
    void element(uint64_t value);

    std::string str() const { return out_; }

  private:
    void indent();
    void separate();
    void key(const std::string& k);

    std::string out_;
    int depth_ = 0;
    bool need_comma_ = false;
};

/**
 * Parsed JSON value tree (recursive-descent parser in parse()).
 *
 * Only what the schema tests and the obscheck validator need: type
 * inspection, object key lookup, array iteration. Numbers are stored as
 * double.
 */
struct JsonValue
{
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return type == Type::kNull; }
    bool isObject() const { return type == Type::kObject; }
    bool isArray() const { return type == Type::kArray; }
    bool isNumber() const { return type == Type::kNumber; }
    bool isString() const { return type == Type::kString; }

    bool has(const std::string& k) const { return object.count(k) > 0; }
    /** Returns the member or a static null value. */
    const JsonValue& at(const std::string& k) const;
};

/**
 * Parses one JSON document. Returns nullopt and fills *error (if given)
 * with a position-annotated message on malformed input.
 */
std::optional<JsonValue> parseJson(const std::string& text,
                                   std::string* error = nullptr);

}  // namespace approxhadoop::obs

#endif  // APPROXHADOOP_OBS_JSON_H_
