#ifndef APPROXHADOOP_APPS_AGGREGATION_REGISTRY_H_
#define APPROXHADOOP_APPS_AGGREGATION_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/sampling_reducer.h"
#include "hdfs/dataset.h"
#include "mapreduce/job.h"
#include "mapreduce/job_config.h"
#include "sim/cluster.h"

namespace approxhadoop::apps {

/**
 * One row per multi-stage-sampling aggregation application: everything
 * needed to build its dataset, configure its job, and run it precisely
 * or approximately. approxrun's dispatch and the chaos harness
 * (src/chaos/) both draw from this table, so the CLI's workload list
 * and the fuzzer's scenario space cannot drift apart.
 */
struct AggregationWorkload
{
    /** CLI name (approxrun <name>, chaos scenario workload). */
    std::string name;

    /** The reducer aggregation this app estimates under sampling. */
    core::MultiStageSamplingReducer::Op op;

    /** Paper-scale dataset shape used when the CLI gives no override. */
    uint64_t default_blocks = 0;
    uint64_t default_items = 0;

    /** Builds the synthetic dataset (blocks x items, seeded). */
    std::function<std::unique_ptr<hdfs::BlockDataset>(
        uint64_t blocks, uint64_t items, uint64_t seed)>
        make_dataset;

    /** App cost model / framework config for a given block size. */
    std::function<mr::JobConfig(uint64_t items_per_block,
                                uint32_t num_reducers)>
        job_config;

    std::function<mr::Job::MapperFactory()> mapper_factory;
    std::function<mr::Job::ReducerFactory()> precise_reducer_factory;
};

/** All aggregation workloads, in the order usage() lists them. */
const std::vector<AggregationWorkload>& aggregationWorkloads();

/** Looks up a workload by CLI name; nullptr when unknown. */
const AggregationWorkload* findAggregationWorkload(const std::string& name);

/** Space-separated list of valid workload names (for usage/errors). */
std::string aggregationWorkloadNames();

/**
 * Fault-free precise reference run of @p workload over @p data on a
 * fresh cluster/NameNode (no state shared with any approximate run of
 * the same dataset). The fault plan and failure mode in @p config are
 * overridden to none/retry; everything else is kept so the reference
 * answers "what would this exact job compute without approximation or
 * faults". Used by `approxrun --selfcheck` and by the chaos oracle's
 * statistical-soundness battery.
 */
mr::JobResult runPreciseReference(const AggregationWorkload& workload,
                                  const hdfs::BlockDataset& data,
                                  mr::JobConfig config,
                                  const sim::ClusterConfig& cluster_config,
                                  uint64_t seed);

}  // namespace approxhadoop::apps

#endif  // APPROXHADOOP_APPS_AGGREGATION_REGISTRY_H_
