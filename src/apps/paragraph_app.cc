#include "apps/paragraph_app.h"

#include <algorithm>
#include <cstdlib>

#include "common/random.h"
#include "workloads/wiki_dump.h"

namespace approxhadoop::apps {

uint64_t
ParagraphAverage::paragraphCount(uint64_t size_bytes)
{
    return size_bytes / kBytesPerParagraph + 1;
}

uint64_t
ParagraphAverage::occurrences(uint64_t article_id, uint64_t paragraph)
{
    // 0..4 occurrences, heavier on 0/1, deterministic in (page, para).
    uint64_t h = splitmix64(article_id * 2654435761ULL + paragraph);
    uint64_t r = h % 16;
    if (r < 8) {
        return 0;
    }
    if (r < 13) {
        return 1;
    }
    if (r < 15) {
        return 2;
    }
    return 3;
}

void
ParagraphAverage::Mapper::map(const std::string& record,
                              mr::MapContext& ctx)
{
    // Record format comes from workloads::makeWikiDump: "aID\tsize\t...".
    uint64_t article_id = std::strtoull(record.c_str() + 1, nullptr, 10);
    uint64_t size = workloads::wikiArticleSize(record);
    uint64_t paragraphs = paragraphCount(size);
    uint64_t scanned = std::min(paragraphs, paragraphs_scanned_);

    double sum = 0.0;
    double sum_sq = 0.0;
    for (uint64_t p = 0; p < scanned; ++p) {
        double occ = static_cast<double>(occurrences(article_id, p));
        sum += occ;
        sum_sq += occ * occ;
    }
    core::ThreeStageEmitter::emitUnit(ctx, kKey, paragraphs, scanned, sum,
                                      sum_sq);
}

mr::Job::MapperFactory
ParagraphAverage::mapperFactory(uint64_t scanned)
{
    return [scanned] { return std::make_unique<Mapper>(scanned); };
}

mr::JobConfig
ParagraphAverage::jobConfig(uint64_t items_per_block, uint32_t num_reducers)
{
    mr::JobConfig config;
    config.name = "ParagraphAverage";
    config.num_reducers = num_reducers;
    double scale = 400.0 / static_cast<double>(items_per_block);
    config.map_cost.t0 = 1.2;
    config.map_cost.t_read = 0.10 * scale;
    config.map_cost.t_process = 0.06 * scale;
    config.map_cost.noise_sigma = 0.03;
    config.reduce_cost.t0 = 1.0;
    config.reduce_cost.t_record = 2e-5;
    return config;
}

double
ParagraphAverage::exactAverage(const hdfs::BlockDataset& dataset)
{
    double total = 0.0;
    double paragraphs = 0.0;
    for (uint64_t b = 0; b < dataset.numBlocks(); ++b) {
        for (uint64_t i = 0; i < dataset.itemsInBlock(b); ++i) {
            std::string record = dataset.item(b, i);
            uint64_t article_id =
                std::strtoull(record.c_str() + 1, nullptr, 10);
            uint64_t count =
                paragraphCount(workloads::wikiArticleSize(record));
            for (uint64_t p = 0; p < count; ++p) {
                total += static_cast<double>(occurrences(article_id, p));
            }
            paragraphs += static_cast<double>(count);
        }
    }
    return total / paragraphs;
}

}  // namespace approxhadoop::apps
