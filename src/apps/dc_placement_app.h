#ifndef APPROXHADOOP_APPS_DC_PLACEMENT_APP_H_
#define APPROXHADOOP_APPS_DC_PLACEMENT_APP_H_

#include <memory>
#include <string>

#include "mapreduce/job.h"
#include "mapreduce/job_config.h"
#include "workloads/dc_placement.h"

namespace approxhadoop::apps {

/**
 * Datacenter Placement (paper Section 5.2): each map task runs
 * independent simulated-annealing searches over the placement space and
 * emits the minimum cost it found; the single reduce task outputs the
 * overall minimum plus a GEV-based estimate of the achievable optimum
 * with its confidence interval.
 *
 * Approximation mechanism: task dropping only (the per-task minima are
 * already in Block Minima format, paper Section 3.2).
 */
class DCPlacementApp
{
  public:
    /** Intermediate key under which all minima are emitted. */
    static constexpr const char* kKey = "placement";

    class Mapper : public mr::Mapper
    {
      public:
        explicit Mapper(
            std::shared_ptr<const workloads::DCPlacementProblem> problem)
            : problem_(std::move(problem))
        {
        }

        void map(const std::string& record, mr::MapContext& ctx) override;
        void cleanup(mr::MapContext& ctx) override;

      private:
        std::shared_ptr<const workloads::DCPlacementProblem> problem_;
        double best_ = 0.0;
        bool any_ = false;
    };

    static mr::Job::MapperFactory
    mapperFactory(std::shared_ptr<const workloads::DCPlacementProblem>
                      problem);

    static mr::Job::ReducerFactory preciseReducerFactory();

    /**
     * CPU-bound cost model: the paper runs this with 4 map slots per
     * server (most efficient for the CPU-bound search), 80 or 320 maps.
     *
     * @param seeds_per_task SA searches per map task
     */
    static mr::JobConfig jobConfig(uint64_t seeds_per_task = 4,
                                   uint32_t num_reducers = 1);
};

}  // namespace approxhadoop::apps

#endif  // APPROXHADOOP_APPS_DC_PLACEMENT_APP_H_
