#ifndef APPROXHADOOP_APPS_WEBSERVER_APPS_H_
#define APPROXHADOOP_APPS_WEBSERVER_APPS_H_

#include <string>
#include <string_view>

#include "core/sampling_reducer.h"
#include "mapreduce/job.h"
#include "mapreduce/job_config.h"

namespace approxhadoop::apps {

/**
 * Cost model for the departmental web-server log (paper Section 5.4):
 * 80 one-week blocks that fit a single wave on the 10x8-slot Xeon
 * cluster — which is exactly why dropping maps saves energy there but
 * not time (Figure 12).
 */
mr::JobConfig webServerLogConfig(const std::string& name,
                                 uint64_t items_per_block = 600,
                                 uint32_t num_reducers = 1);

/**
 * Request Rate (Figure 10(a)/(b)): average number of requests per
 * hour-of-week. Map emits <hour, 1>; multi-stage sampling (kCount).
 */
class WebRequestRate
{
  public:
    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;
    };

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();
    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kCount;
};

/**
 * Attack Frequencies (Figure 10(c)): attacks per client for a set of
 * known attack patterns. Rare values, so CIs are wide — the paper's
 * showcase of approximation being least effective on rare keys.
 */
class AttackFrequencies
{
  public:
    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;
    };

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();
    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kCount;
};

/** Total Size: total bytes served (kSum, single key). */
class TotalSize
{
  public:
    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;
    };

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();
    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kSum;
};

/** Request Size: average response size in bytes (kAverage). */
class RequestSize
{
  public:
    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;
    };

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();
    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kAverage;
};

/** Clients: requests per client (kCount). */
class Clients
{
  public:
    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;
    };

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();
    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kCount;
};

/** Client Browser: requests per browser family (kCount). */
class ClientBrowser
{
  public:
    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;
    };

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();
    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kCount;
};

}  // namespace approxhadoop::apps

#endif  // APPROXHADOOP_APPS_WEBSERVER_APPS_H_
