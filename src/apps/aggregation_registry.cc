#include "apps/aggregation_registry.h"

#include "apps/log_apps.h"
#include "apps/webserver_apps.h"
#include "apps/wiki_apps.h"
#include "core/approx_job.h"
#include "ft/fault_plan.h"
#include "ft/recovery_policy.h"
#include "hdfs/namenode.h"
#include "workloads/access_log.h"
#include "workloads/skew_storm.h"
#include "workloads/webserver_log.h"
#include "workloads/wiki_dump.h"

namespace approxhadoop::apps {

namespace {

std::unique_ptr<hdfs::BlockDataset>
makeWiki(uint64_t blocks, uint64_t items, uint64_t seed)
{
    workloads::WikiDumpParams params;
    params.num_blocks = blocks;
    params.articles_per_block = items;
    params.seed = seed;
    return workloads::makeWikiDump(params);
}

std::unique_ptr<hdfs::BlockDataset>
makeLog(uint64_t blocks, uint64_t items, uint64_t seed)
{
    workloads::AccessLogParams params;
    params.num_blocks = blocks;
    params.entries_per_block = items;
    params.seed = seed;
    return workloads::makeAccessLog(params);
}

std::unique_ptr<hdfs::BlockDataset>
makeStorm(uint64_t blocks, uint64_t items, uint64_t seed)
{
    workloads::SkewStormParams params;
    params.num_blocks = blocks;
    params.items_per_block = items;
    params.seed = seed;
    return workloads::makeSkewStorm(params);
}

std::unique_ptr<hdfs::BlockDataset>
makeWeb(uint64_t blocks, uint64_t items, uint64_t seed)
{
    workloads::WebServerLogParams params;
    params.num_weeks = blocks;
    params.entries_per_week = items;
    params.seed = seed;
    return workloads::makeWebServerLog(params);
}

template <typename App>
AggregationWorkload
wikiEntry(const std::string& name)
{
    AggregationWorkload w;
    w.name = name;
    w.op = App::kOp;
    w.default_blocks = 161;
    w.default_items = 400;
    w.make_dataset = makeWiki;
    w.job_config = [](uint64_t items, uint32_t reducers) {
        return App::jobConfig(items, reducers);
    };
    w.mapper_factory = [] { return App::mapperFactory(); };
    w.precise_reducer_factory = [] { return App::preciseReducerFactory(); };
    return w;
}

template <typename App>
AggregationWorkload
accessLogEntry(const std::string& name)
{
    AggregationWorkload w;
    w.name = name;
    w.op = App::kOp;
    w.default_blocks = 744;
    w.default_items = 400;
    w.make_dataset = makeLog;
    w.job_config = [name](uint64_t items, uint32_t reducers) {
        return logProcessingConfig(name, items, reducers);
    };
    w.mapper_factory = [] { return App::mapperFactory(); };
    w.precise_reducer_factory = [] { return App::preciseReducerFactory(); };
    return w;
}

/** Skew-storm variant of a log app: same record format and mapper,
 *  adversarial hot-key / Zipf-shifted-block-size input. */
template <typename App>
AggregationWorkload
skewStormEntry(const std::string& name)
{
    AggregationWorkload w;
    w.name = name;
    w.op = App::kOp;
    w.default_blocks = 744;
    w.default_items = 400;
    w.make_dataset = makeStorm;
    w.job_config = [name](uint64_t items, uint32_t reducers) {
        return logProcessingConfig(name, items, reducers);
    };
    w.mapper_factory = [] { return App::mapperFactory(); };
    w.precise_reducer_factory = [] { return App::preciseReducerFactory(); };
    return w;
}

template <typename App>
AggregationWorkload
webLogEntry(const std::string& name)
{
    AggregationWorkload w;
    w.name = name;
    w.op = App::kOp;
    w.default_blocks = 80;
    w.default_items = 2000;
    w.make_dataset = makeWeb;
    w.job_config = [name](uint64_t items, uint32_t reducers) {
        return webServerLogConfig(name, items, reducers);
    };
    w.mapper_factory = [] { return App::mapperFactory(); };
    w.precise_reducer_factory = [] { return App::preciseReducerFactory(); };
    return w;
}

}  // namespace

const std::vector<AggregationWorkload>&
aggregationWorkloads()
{
    static const std::vector<AggregationWorkload> kWorkloads = {
        wikiEntry<WikiLength>("wikilength"),
        wikiEntry<WikiPageRank>("wikipagerank"),
        accessLogEntry<ProjectPopularity>("projectpop"),
        accessLogEntry<PagePopularity>("pagepop"),
        accessLogEntry<PageTraffic>("pagetraffic"),
        webLogEntry<WebRequestRate>("webrate"),
        webLogEntry<AttackFrequencies>("attacks"),
        webLogEntry<TotalSize>("totalsize"),
        webLogEntry<RequestSize>("requestsize"),
        webLogEntry<Clients>("clients"),
        webLogEntry<ClientBrowser>("browsers"),
        skewStormEntry<ProjectPopularity>("skewstorm"),
    };
    return kWorkloads;
}

const AggregationWorkload*
findAggregationWorkload(const std::string& name)
{
    for (const AggregationWorkload& w : aggregationWorkloads()) {
        if (w.name == name) {
            return &w;
        }
    }
    return nullptr;
}

std::string
aggregationWorkloadNames()
{
    std::string names;
    for (const AggregationWorkload& w : aggregationWorkloads()) {
        if (!names.empty()) {
            names += ' ';
        }
        names += w.name;
    }
    return names;
}

mr::JobResult
runPreciseReference(const AggregationWorkload& workload,
                    const hdfs::BlockDataset& data, mr::JobConfig config,
                    const sim::ClusterConfig& cluster_config, uint64_t seed)
{
    config.fault_plan = ft::FaultPlan{};
    config.failure_mode = ft::FailureMode::kRetry;
    sim::Cluster cluster(cluster_config);
    hdfs::NameNode namenode(cluster.numServers(), 3, seed);
    core::ApproxJobRunner runner(cluster, data, namenode);
    return runner.runPrecise(config, workload.mapper_factory(),
                             workload.precise_reducer_factory());
}

}  // namespace approxhadoop::apps
