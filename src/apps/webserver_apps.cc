#include "apps/webserver_apps.h"

#include <cstdio>
#include <memory>

#include "mapreduce/reducer.h"
#include "workloads/webserver_log.h"

namespace approxhadoop::apps {

namespace {

/** Parses the record once; returns false for malformed lines. */
bool
parse(const std::string& record, workloads::WebLogEntry& entry)
{
    return workloads::parseWebLogEntry(record, entry);
}

mr::Job::ReducerFactory
sumReducerFactory()
{
    return [] { return std::make_unique<mr::SumReducer>(); };
}

}  // namespace

mr::JobConfig
webServerLogConfig(const std::string& name, uint64_t items_per_block,
                   uint32_t num_reducers)
{
    mr::JobConfig config;
    config.name = name;
    config.num_reducers = num_reducers;
    double scale = 600.0 / static_cast<double>(items_per_block);
    config.map_cost.t0 = 1.0;
    config.map_cost.t_read = 0.009 * scale;
    config.map_cost.t_process = 0.009 * scale;
    config.map_cost.noise_sigma = 0.03;
    config.map_cost.straggler_prob = 0.002;
    config.map_cost.straggler_factor = 2.0;
    config.reduce_cost.t0 = 1.0;
    config.reduce_cost.t_record = 2e-5;
    return config;
}

void
WebRequestRate::Mapper::map(const std::string& record, mr::MapContext& ctx)
{
    workloads::WebLogEntry entry;
    if (!parse(record, entry)) {
        return;
    }
    char key[16];
    std::snprintf(key, sizeof(key), "h%03u", entry.hour_of_week);
    ctx.write(key, 1.0);
}

void
WebRequestRate::Mapper::mapBatch(const std::string_view* records,
                                 size_t count, mr::MapContext& ctx)
{
    workloads::WebLogEntryView entry;
    char key[16];
    for (size_t i = 0; i < count; ++i) {
        if (!workloads::parseWebLogEntry(records[i], entry)) {
            continue;
        }
        std::snprintf(key, sizeof(key), "h%03u", entry.hour_of_week);
        ctx.write(key, 1.0);
    }
}

mr::Job::MapperFactory
WebRequestRate::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
WebRequestRate::preciseReducerFactory()
{
    return sumReducerFactory();
}

void
AttackFrequencies::Mapper::map(const std::string& record,
                               mr::MapContext& ctx)
{
    workloads::WebLogEntry entry;
    if (parse(record, entry) && entry.attack) {
        ctx.write(entry.client, 1.0);
    }
}

void
AttackFrequencies::Mapper::mapBatch(const std::string_view* records,
                                    size_t count, mr::MapContext& ctx)
{
    workloads::WebLogEntryView entry;
    for (size_t i = 0; i < count; ++i) {
        if (workloads::parseWebLogEntry(records[i], entry) && entry.attack) {
            ctx.write(entry.client, 1.0);
        }
    }
}

mr::Job::MapperFactory
AttackFrequencies::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
AttackFrequencies::preciseReducerFactory()
{
    return sumReducerFactory();
}

void
TotalSize::Mapper::map(const std::string& record, mr::MapContext& ctx)
{
    workloads::WebLogEntry entry;
    if (parse(record, entry)) {
        ctx.write("total_bytes", static_cast<double>(entry.bytes));
    }
}

void
TotalSize::Mapper::mapBatch(const std::string_view* records, size_t count,
                            mr::MapContext& ctx)
{
    workloads::WebLogEntryView entry;
    for (size_t i = 0; i < count; ++i) {
        if (workloads::parseWebLogEntry(records[i], entry)) {
            ctx.write("total_bytes", static_cast<double>(entry.bytes));
        }
    }
}

mr::Job::MapperFactory
TotalSize::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
TotalSize::preciseReducerFactory()
{
    return sumReducerFactory();
}

void
RequestSize::Mapper::map(const std::string& record, mr::MapContext& ctx)
{
    workloads::WebLogEntry entry;
    if (parse(record, entry)) {
        ctx.write("mean_bytes", static_cast<double>(entry.bytes));
    }
}

void
RequestSize::Mapper::mapBatch(const std::string_view* records, size_t count,
                              mr::MapContext& ctx)
{
    workloads::WebLogEntryView entry;
    for (size_t i = 0; i < count; ++i) {
        if (workloads::parseWebLogEntry(records[i], entry)) {
            ctx.write("mean_bytes", static_cast<double>(entry.bytes));
        }
    }
}

mr::Job::MapperFactory
RequestSize::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
RequestSize::preciseReducerFactory()
{
    return [] { return std::make_unique<mr::AverageReducer>(); };
}

void
Clients::Mapper::map(const std::string& record, mr::MapContext& ctx)
{
    workloads::WebLogEntry entry;
    if (parse(record, entry)) {
        ctx.write(entry.client, 1.0);
    }
}

void
Clients::Mapper::mapBatch(const std::string_view* records, size_t count,
                          mr::MapContext& ctx)
{
    workloads::WebLogEntryView entry;
    for (size_t i = 0; i < count; ++i) {
        if (workloads::parseWebLogEntry(records[i], entry)) {
            ctx.write(entry.client, 1.0);
        }
    }
}

mr::Job::MapperFactory
Clients::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
Clients::preciseReducerFactory()
{
    return sumReducerFactory();
}

void
ClientBrowser::Mapper::map(const std::string& record, mr::MapContext& ctx)
{
    workloads::WebLogEntry entry;
    if (parse(record, entry)) {
        ctx.write(entry.browser, 1.0);
    }
}

void
ClientBrowser::Mapper::mapBatch(const std::string_view* records,
                                size_t count, mr::MapContext& ctx)
{
    workloads::WebLogEntryView entry;
    for (size_t i = 0; i < count; ++i) {
        if (workloads::parseWebLogEntry(records[i], entry)) {
            ctx.write(entry.browser, 1.0);
        }
    }
}

mr::Job::MapperFactory
ClientBrowser::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
ClientBrowser::preciseReducerFactory()
{
    return sumReducerFactory();
}

}  // namespace approxhadoop::apps
