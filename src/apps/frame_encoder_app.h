#ifndef APPROXHADOOP_APPS_FRAME_ENCODER_APP_H_
#define APPROXHADOOP_APPS_FRAME_ENCODER_APP_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/user_defined.h"
#include "hdfs/dataset.h"
#include "mapreduce/job.h"
#include "mapreduce/job_config.h"

namespace approxhadoop::apps {

/**
 * Video Encoding (paper Table 1: user-defined approximation).
 *
 * Each data item is one frame, described by per-macroblock complexity
 * values. The precise map variant performs an exhaustive motion search
 * per macroblock; the approximate variant uses a small diamond-pattern
 * search that may settle for a slightly worse match, producing more
 * residual bits. The job reports the encoded bit count and a PSNR-like
 * quality metric, making the accuracy/effort trade explicit.
 */
class FrameEncoderApp
{
  public:
    /** Macroblocks per frame. */
    static constexpr uint32_t kMacroblocks = 64;
    /** Candidates evaluated by the exhaustive search (15x15 window). */
    static constexpr uint32_t kFullSearchCandidates = 225;
    /** Candidates evaluated by the approximate diamond search. */
    static constexpr uint32_t kDiamondCandidates = 25;

    class Mapper : public core::UserDefinedApproxMapper
    {
      public:
        void mapPrecise(const std::string& record,
                        mr::MapContext& ctx) override;
        void mapApprox(const std::string& record,
                       mr::MapContext& ctx) override;

      private:
        /** Encodes one frame with the given search breadth. */
        void encode(const std::string& record, mr::MapContext& ctx,
                    uint32_t candidates);
    };

    /** Synthetic frame dataset (one movie of num_blocks GOPs). */
    static std::unique_ptr<hdfs::BlockDataset>
    makeFrames(uint64_t num_blocks, uint64_t frames_per_block,
               uint64_t seed);

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory reducerFactory();
    static mr::JobConfig jobConfig(uint64_t frames_per_block = 120,
                                   uint32_t num_reducers = 1);
};

}  // namespace approxhadoop::apps

#endif  // APPROXHADOOP_APPS_FRAME_ENCODER_APP_H_
