#include "apps/dc_placement_app.h"

#include <algorithm>
#include <cstdlib>

#include "mapreduce/reducer.h"

namespace approxhadoop::apps {

void
DCPlacementApp::Mapper::map(const std::string& record, mr::MapContext& ctx)
{
    // Each input item is one search seed.
    uint64_t seed = std::strtoull(record.c_str(), nullptr, 10);
    Rng rng(seed);
    double cost = problem_->simulatedAnnealing(rng);
    if (!any_ || cost < best_) {
        best_ = cost;
        any_ = true;
    }
    (void)ctx;
}

void
DCPlacementApp::Mapper::cleanup(mr::MapContext& ctx)
{
    if (any_) {
        // One minimum per map task: already Block Minima format.
        ctx.write(kKey, best_);
    }
}

mr::Job::MapperFactory
DCPlacementApp::mapperFactory(
    std::shared_ptr<const workloads::DCPlacementProblem> problem)
{
    return [problem] { return std::make_unique<Mapper>(problem); };
}

mr::Job::ReducerFactory
DCPlacementApp::preciseReducerFactory()
{
    return [] { return std::make_unique<mr::MinReducer>(); };
}

mr::JobConfig
DCPlacementApp::jobConfig(uint64_t seeds_per_task, uint32_t num_reducers)
{
    mr::JobConfig config;
    config.name = "DCPlacement";
    config.num_reducers = num_reducers;
    // CPU-bound: negligible read cost, ~25 s of search per seed.
    double scale = 4.0 / static_cast<double>(seeds_per_task);
    config.map_cost.t0 = 2.0;
    config.map_cost.t_read = 0.0;
    config.map_cost.t_process = 25.0 * scale;
    config.map_cost.noise_sigma = 0.06;
    config.map_cost.straggler_prob = 0.002;
    config.map_cost.straggler_factor = 2.0;
    config.reduce_cost.t0 = 1.0;
    config.reduce_cost.t_record = 1e-4;
    return config;
}

}  // namespace approxhadoop::apps
