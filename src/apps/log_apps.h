#ifndef APPROXHADOOP_APPS_LOG_APPS_H_
#define APPROXHADOOP_APPS_LOG_APPS_H_

#include <string>
#include <string_view>

#include "core/sampling_reducer.h"
#include "mapreduce/job.h"
#include "mapreduce/job_config.h"

namespace approxhadoop::apps {

/**
 * Shared cost model for Wikipedia access-log processing: grep-like
 * per-line work, ~10.6 s per 400-entry block on the Xeon reference
 * (744 blocks of the 1-week log run in ~9.3 waves, reproducing the
 * paper's Figure 7/9 runtimes). The paper measures ~12% framework
 * overhead for these apps.
 *
 * @param items_per_block log entries per block of the dataset in use
 */
mr::JobConfig logProcessingConfig(const std::string& name,
                                  uint64_t items_per_block = 400,
                                  uint32_t num_reducers = 1);

/**
 * Project Popularity (Section 5.2): accesses per Wikipedia project.
 * Map emits <project, 1>; Reduce counts. Multi-stage sampling (kCount).
 */
class ProjectPopularity
{
  public:
    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;
    };

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();
    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kCount;
};

/** Page Popularity: accesses per page. */
class PagePopularity
{
  public:
    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;
    };

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();
    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kCount;
};

/** Page Traffic: bytes served per page (kSum over response sizes). */
class PageTraffic
{
  public:
    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;
    };

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();
    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kSum;
};

/**
 * Request Rate over the access log: accesses per hour-of-week slot.
 * Map emits <hour, 1>; Reduce counts.
 */
class LogRequestRate
{
  public:
    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;
    };

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();
    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kCount;
};

}  // namespace approxhadoop::apps

#endif  // APPROXHADOOP_APPS_LOG_APPS_H_
