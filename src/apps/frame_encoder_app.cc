#include "apps/frame_encoder_app.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/random.h"
#include "mapreduce/reducer.h"

namespace approxhadoop::apps {

namespace {

/**
 * Deterministic pseudo match cost of candidate c for macroblock mb of
 * frame f: stands in for the SAD of a motion-estimation candidate. The
 * best candidate over a window is what the search is looking for.
 */
double
candidateCost(uint64_t frame, uint32_t mb, uint32_t candidate,
              double complexity)
{
    uint64_t h = splitmix64(frame * 131071 + mb * 257 + candidate);
    double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    // Costs cluster near the complexity floor; the exhaustive search is
    // more likely to find a candidate near it.
    return complexity * (0.5 + u);
}

}  // namespace

void
FrameEncoderApp::Mapper::encode(const std::string& record,
                                mr::MapContext& ctx, uint32_t candidates)
{
    // Record: "frame_id <TAB> complexity".
    uint64_t frame = std::strtoull(record.c_str(), nullptr, 10);
    const char* tab = std::strchr(record.c_str(), '\t');
    double complexity = tab ? std::strtod(tab + 1, nullptr) : 1.0;

    double total_bits = 0.0;
    double total_error = 0.0;
    for (uint32_t mb = 0; mb < kMacroblocks; ++mb) {
        double best = candidateCost(frame, mb, 0, complexity);
        for (uint32_t c = 1; c < candidates; ++c) {
            best = std::min(best, candidateCost(frame, mb, c, complexity));
        }
        // Residual bits grow with the (un)matched cost.
        total_bits += 80.0 + 160.0 * best;
        total_error += best;
    }
    ctx.write("bits", total_bits);
    double mse = total_error / kMacroblocks;
    ctx.write("psnr", 10.0 * std::log10(255.0 * 255.0 / (mse + 1e-9)));
}

void
FrameEncoderApp::Mapper::mapPrecise(const std::string& record,
                                    mr::MapContext& ctx)
{
    encode(record, ctx, kFullSearchCandidates);
}

void
FrameEncoderApp::Mapper::mapApprox(const std::string& record,
                                   mr::MapContext& ctx)
{
    encode(record, ctx, kDiamondCandidates);
}

std::unique_ptr<hdfs::BlockDataset>
FrameEncoderApp::makeFrames(uint64_t num_blocks, uint64_t frames_per_block,
                            uint64_t seed)
{
    auto generator = [seed, frames_per_block](uint64_t block,
                                              uint64_t index) {
        uint64_t frame = block * frames_per_block + index;
        Rng rng(splitmix64(seed ^ frame));
        // Scene complexity varies smoothly along the movie.
        double complexity =
            1.0 +
            0.6 * std::sin(static_cast<double>(frame) / 40.0) +
            rng.uniform(0.0, 0.4);
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%llu\t%.4f",
                      static_cast<unsigned long long>(frame), complexity);
        return std::string(buf);
    };
    return std::make_unique<hdfs::GeneratedDataset>(
        num_blocks, frames_per_block, generator, 6000);
}

mr::Job::MapperFactory
FrameEncoderApp::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
FrameEncoderApp::reducerFactory()
{
    return [] { return std::make_unique<mr::AverageReducer>(); };
}

mr::JobConfig
FrameEncoderApp::jobConfig(uint64_t frames_per_block, uint32_t num_reducers)
{
    mr::JobConfig config;
    config.name = "VideoEncoding";
    config.num_reducers = num_reducers;
    double scale = 120.0 / static_cast<double>(frames_per_block);
    config.map_cost.t0 = 1.5;
    config.map_cost.t_read = 0.02 * scale;
    config.map_cost.t_process = 0.5 * scale;
    // Diamond search evaluates ~1/9 of the candidates.
    config.map_cost.approx_process_factor =
        static_cast<double>(kDiamondCandidates) / kFullSearchCandidates;
    config.map_cost.noise_sigma = 0.03;
    config.reduce_cost.t0 = 1.0;
    config.reduce_cost.t_record = 2e-5;
    return config;
}

}  // namespace approxhadoop::apps
