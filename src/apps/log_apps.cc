#include "apps/log_apps.h"

#include <cstdio>
#include <memory>

#include "mapreduce/reducer.h"
#include "workloads/access_log.h"

namespace approxhadoop::apps {

mr::JobConfig
logProcessingConfig(const std::string& name, uint64_t items_per_block,
                    uint32_t num_reducers)
{
    mr::JobConfig config;
    config.name = name;
    config.num_reducers = num_reducers;
    double scale = 400.0 / static_cast<double>(items_per_block);
    config.map_cost.t0 = 1.0;
    config.map_cost.t_read = 0.012 * scale;
    config.map_cost.t_process = 0.012 * scale;
    config.map_cost.noise_sigma = 0.03;
    config.map_cost.straggler_prob = 0.002;
    config.map_cost.straggler_factor = 2.0;
    config.reduce_cost.t0 = 1.5;
    config.reduce_cost.t_record = 2e-5;
    return config;
}

void
ProjectPopularity::Mapper::map(const std::string& record,
                               mr::MapContext& ctx)
{
    workloads::AccessLogEntry entry;
    if (workloads::parseAccessLogEntry(record, entry)) {
        ctx.write(entry.project, 1.0);
    }
}

void
ProjectPopularity::Mapper::mapBatch(const std::string_view* records,
                                    size_t count, mr::MapContext& ctx)
{
    workloads::AccessLogEntryView entry;
    for (size_t i = 0; i < count; ++i) {
        if (workloads::parseAccessLogEntry(records[i], entry)) {
            ctx.write(entry.project, 1.0);
        }
    }
}

mr::Job::MapperFactory
ProjectPopularity::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
ProjectPopularity::preciseReducerFactory()
{
    return [] { return std::make_unique<mr::SumReducer>(); };
}

void
PagePopularity::Mapper::map(const std::string& record, mr::MapContext& ctx)
{
    workloads::AccessLogEntry entry;
    if (workloads::parseAccessLogEntry(record, entry)) {
        ctx.write(entry.page, 1.0);
    }
}

void
PagePopularity::Mapper::mapBatch(const std::string_view* records,
                                 size_t count, mr::MapContext& ctx)
{
    workloads::AccessLogEntryView entry;
    for (size_t i = 0; i < count; ++i) {
        if (workloads::parseAccessLogEntry(records[i], entry)) {
            ctx.write(entry.page, 1.0);
        }
    }
}

mr::Job::MapperFactory
PagePopularity::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
PagePopularity::preciseReducerFactory()
{
    return [] { return std::make_unique<mr::SumReducer>(); };
}

void
PageTraffic::Mapper::map(const std::string& record, mr::MapContext& ctx)
{
    workloads::AccessLogEntry entry;
    if (workloads::parseAccessLogEntry(record, entry)) {
        ctx.write(entry.page, static_cast<double>(entry.bytes));
    }
}

void
PageTraffic::Mapper::mapBatch(const std::string_view* records, size_t count,
                              mr::MapContext& ctx)
{
    workloads::AccessLogEntryView entry;
    for (size_t i = 0; i < count; ++i) {
        if (workloads::parseAccessLogEntry(records[i], entry)) {
            ctx.write(entry.page, static_cast<double>(entry.bytes));
        }
    }
}

mr::Job::MapperFactory
PageTraffic::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
PageTraffic::preciseReducerFactory()
{
    return [] { return std::make_unique<mr::SumReducer>(); };
}

void
LogRequestRate::Mapper::map(const std::string& record, mr::MapContext& ctx)
{
    workloads::AccessLogEntry entry;
    if (!workloads::parseAccessLogEntry(record, entry)) {
        return;
    }
    uint32_t hour = static_cast<uint32_t>((entry.timestamp / 3600) % 168);
    char key[16];
    std::snprintf(key, sizeof(key), "h%03u", hour);
    ctx.write(key, 1.0);
}

void
LogRequestRate::Mapper::mapBatch(const std::string_view* records,
                                 size_t count, mr::MapContext& ctx)
{
    workloads::AccessLogEntryView entry;
    char key[16];
    for (size_t i = 0; i < count; ++i) {
        if (!workloads::parseAccessLogEntry(records[i], entry)) {
            continue;
        }
        uint32_t hour =
            static_cast<uint32_t>((entry.timestamp / 3600) % 168);
        std::snprintf(key, sizeof(key), "h%03u", hour);
        ctx.write(key, 1.0);
    }
}

mr::Job::MapperFactory
LogRequestRate::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
LogRequestRate::preciseReducerFactory()
{
    return [] { return std::make_unique<mr::SumReducer>(); };
}

}  // namespace approxhadoop::apps
