#include "apps/wiki_apps.h"

#include <charconv>
#include <cstring>
#include <vector>

#include "mapreduce/reducer.h"
#include "workloads/wiki_dump.h"

namespace approxhadoop::apps {

// ---------------------------------------------------------------------------
// WikiLength
// ---------------------------------------------------------------------------

namespace {

/** Formats "len%08llu" into @p buf (no heap); same bytes as snprintf. */
std::string_view
formatBinKey(uint64_t bin, char (&buf)[24])
{
    char digits[20];
    auto res = std::to_chars(digits, digits + sizeof(digits), bin);
    size_t n = static_cast<size_t>(res.ptr - digits);
    std::memcpy(buf, "len", 3);
    size_t pad = n < 8 ? 8 - n : 0;
    std::memset(buf + 3, '0', pad);
    std::memcpy(buf + 3 + pad, digits, n);
    return std::string_view(buf, 3 + pad + n);
}

}  // namespace

std::string
WikiLength::binKey(uint64_t size_bytes)
{
    uint64_t bin = size_bytes / kBinWidthBytes * kBinWidthBytes;
    char buf[24];
    return std::string(formatBinKey(bin, buf));
}

void
WikiLength::Mapper::map(const std::string& record, mr::MapContext& ctx)
{
    uint64_t size = workloads::wikiArticleSize(record);
    ctx.write(binKey(size), 1.0);
}

void
WikiLength::Mapper::mapBatch(const std::string_view* records, size_t count,
                             mr::MapContext& ctx)
{
    char buf[24];
    for (size_t i = 0; i < count; ++i) {
        uint64_t size = workloads::wikiArticleSize(records[i]);
        uint64_t bin = size / kBinWidthBytes * kBinWidthBytes;
        ctx.write(formatBinKey(bin, buf), 1.0);
    }
}

mr::Job::MapperFactory
WikiLength::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
WikiLength::preciseReducerFactory()
{
    return [] { return std::make_unique<mr::SumReducer>(); };
}

mr::JobConfig
WikiLength::jobConfig(uint64_t items_per_block, uint32_t num_reducers)
{
    mr::JobConfig config;
    config.name = "WikiLength";
    config.num_reducers = num_reducers;
    // ~70 s per 400-article block: read-dominated, so input sampling can
    // save at most ~21% while dropping saves proportionally (Fig. 6).
    double scale = 400.0 / static_cast<double>(items_per_block);
    config.map_cost.t0 = 1.5;
    config.map_cost.t_read = 0.135 * scale;
    config.map_cost.t_process = 0.037 * scale;
    config.map_cost.noise_sigma = 0.03;
    config.map_cost.straggler_prob = 0.002;
    config.map_cost.straggler_factor = 2.0;
    config.reduce_cost.t0 = 2.0;
    config.reduce_cost.t_record = 2e-5;
    return config;
}

// ---------------------------------------------------------------------------
// WikiPageRank
// ---------------------------------------------------------------------------

void
WikiPageRank::Mapper::map(const std::string& record, mr::MapContext& ctx)
{
    std::vector<std::string> links;
    workloads::wikiArticleLinks(record, links);
    for (const std::string& target : links) {
        ctx.write(target, 1.0);
    }
}

void
WikiPageRank::Mapper::mapBatch(const std::string_view* records,
                               size_t count, mr::MapContext& ctx)
{
    for (size_t i = 0; i < count; ++i) {
        links_.clear();
        workloads::wikiArticleLinks(records[i], links_);
        for (std::string_view target : links_) {
            ctx.write(target, 1.0);
        }
    }
}

mr::Job::MapperFactory
WikiPageRank::mapperFactory()
{
    return [] { return std::make_unique<Mapper>(); };
}

mr::Job::ReducerFactory
WikiPageRank::preciseReducerFactory()
{
    return [] { return std::make_unique<mr::SumReducer>(); };
}

mr::JobConfig
WikiPageRank::jobConfig(uint64_t items_per_block, uint32_t num_reducers)
{
    mr::JobConfig config = WikiLength::jobConfig(items_per_block,
                                                 num_reducers);
    config.name = "WikiPageRank";
    // Link extraction is heavier per article than size binning; the
    // paper reports ~8% framework overhead for this app.
    config.map_cost.t_process *= 1.6;
    return config;
}

}  // namespace approxhadoop::apps
