#ifndef APPROXHADOOP_APPS_KMEANS_APP_H_
#define APPROXHADOOP_APPS_KMEANS_APP_H_

#include <memory>
#include <string>
#include <vector>

#include "core/approx_config.h"
#include "core/user_defined.h"
#include "hdfs/dataset.h"
#include "hdfs/namenode.h"
#include "mapreduce/job.h"
#include "mapreduce/job_config.h"
#include "sim/cluster.h"

namespace approxhadoop::apps {

/**
 * K-Means clustering (paper Table 1: user-defined approximation).
 *
 * One MapReduce job per Lloyd iteration: the map phase assigns each
 * point to its nearest centroid and emits per-centroid coordinate sums
 * and counts; the reduce phase sums them and the driver recomputes the
 * centroids. The user-defined approximate map variant computes nearest
 * centroids on a prefix of the dimensions — cheaper and usually, but
 * not provably, equivalent. The job also emits a user-defined quality
 * metric (the sum of squared distances) so accuracy loss is observable.
 */
class KMeansApp
{
  public:
    using Centroids = std::vector<std::vector<double>>;

    class Mapper : public core::UserDefinedApproxMapper
    {
      public:
        /**
         * @param centroids   current centroids (shared, read-only)
         * @param approx_dims dimensions used by the approximate variant
         */
        Mapper(std::shared_ptr<const Centroids> centroids,
               uint32_t approx_dims)
            : centroids_(std::move(centroids)), approx_dims_(approx_dims)
        {
        }

        void mapPrecise(const std::string& record,
                        mr::MapContext& ctx) override;
        void mapApprox(const std::string& record,
                       mr::MapContext& ctx) override;

      private:
        /** Assignment using the first @p dims dimensions. */
        void assign(const std::string& record, mr::MapContext& ctx,
                    uint32_t dims);

        std::shared_ptr<const Centroids> centroids_;
        uint32_t approx_dims_;
    };

    /** Result of a full K-Means run. */
    struct Result
    {
        Centroids centroids;
        /** Final sum of squared distances (user-defined quality). */
        double sse = 0.0;
        /** Total simulated runtime across iterations, seconds. */
        double runtime = 0.0;
        double energy_wh = 0.0;
        int iterations = 0;
    };

    /**
     * Runs Lloyd iterations as a sequence of MapReduce jobs.
     *
     * @param cluster    simulated cluster
     * @param dataset    point dataset (workloads::makeKMeansData)
     * @param namenode   block-location service
     * @param approx     approximation policy (user_defined_fraction,
     *                   sampling/dropping)
     * @param initial    starting centroids
     * @param iterations Lloyd iterations to run
     */
    static Result run(sim::Cluster& cluster,
                      const hdfs::BlockDataset& dataset,
                      hdfs::NameNode& namenode,
                      const core::ApproxConfig& approx, Centroids initial,
                      int iterations);

    static mr::JobConfig jobConfig(uint64_t points_per_block = 300,
                                   uint32_t num_reducers = 1);
};

}  // namespace approxhadoop::apps

#endif  // APPROXHADOOP_APPS_KMEANS_APP_H_
