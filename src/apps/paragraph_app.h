#ifndef APPROXHADOOP_APPS_PARAGRAPH_APP_H_
#define APPROXHADOOP_APPS_PARAGRAPH_APP_H_

#include <string>

#include "core/three_stage_reducer.h"
#include "hdfs/dataset.h"
#include "mapreduce/job.h"
#include "mapreduce/job_config.h"

namespace approxhadoop::apps {

/**
 * Three-stage sampling demo app, directly from the paper's Section 3.1
 * example: compute the average number of occurrences of a term per
 * *paragraph*, where each input data item is a whole page. The
 * population units are the intermediate pairs (paragraphs), not the
 * pages, so the programmer explicitly opts into the third sampling
 * stage: each map pre-aggregates the paragraphs it actually scanned and
 * emits one unit record per page via ThreeStageEmitter.
 *
 * Pages derive their paragraph count from the article size; per-
 * paragraph occurrence counts are synthesized deterministically from
 * (page, paragraph) so precise and sampled runs observe identical data.
 */
class ParagraphAverage
{
  public:
    /** Term whose per-paragraph frequency is estimated. */
    static constexpr const char* kKey = "occurrences_per_paragraph";

    /** Bytes of article per paragraph (defines K_ij from the size). */
    static constexpr uint64_t kBytesPerParagraph = 400;

    class Mapper : public mr::Mapper
    {
      public:
        /**
         * @param paragraphs_scanned max paragraphs examined per page
         *        (the third-stage sample size k_ij)
         */
        explicit Mapper(uint64_t paragraphs_scanned = 8)
            : paragraphs_scanned_(paragraphs_scanned)
        {
        }

        void map(const std::string& record, mr::MapContext& ctx) override;

      private:
        uint64_t paragraphs_scanned_;
    };

    /** Deterministic occurrence count for (article, paragraph). */
    static uint64_t occurrences(uint64_t article_id, uint64_t paragraph);

    /** Paragraphs in an article of the given size. */
    static uint64_t paragraphCount(uint64_t size_bytes);

    static mr::Job::MapperFactory mapperFactory(uint64_t scanned = 8);
    static mr::JobConfig jobConfig(uint64_t items_per_block = 400,
                                   uint32_t num_reducers = 1);

    /**
     * Exact average over the whole dataset (all pages, all paragraphs);
     * used by tests and benches as ground truth.
     */
    static double exactAverage(const hdfs::BlockDataset& dataset);
};

}  // namespace approxhadoop::apps

#endif  // APPROXHADOOP_APPS_PARAGRAPH_APP_H_
