#include "apps/kmeans_app.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "core/approx_job.h"
#include "mapreduce/reducer.h"
#include "workloads/kmeans_data.h"

namespace approxhadoop::apps {

namespace {

/** Squared distance over the first @p dims coordinates. */
double
squaredDistance(const std::vector<double>& a, const std::vector<double>& b,
                uint32_t dims)
{
    double d2 = 0.0;
    uint32_t n = std::min<uint32_t>(
        dims, static_cast<uint32_t>(std::min(a.size(), b.size())));
    for (uint32_t i = 0; i < n; ++i) {
        double d = a[i] - b[i];
        d2 += d * d;
    }
    return d2;
}

std::string
sumKey(size_t centroid, size_t dim)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "c%u_d%u",
                  static_cast<unsigned>(centroid),
                  static_cast<unsigned>(dim));
    return buf;
}

std::string
countKey(size_t centroid)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "c%u_n", static_cast<unsigned>(centroid));
    return buf;
}

}  // namespace

void
KMeansApp::Mapper::assign(const std::string& record, mr::MapContext& ctx,
                          uint32_t dims)
{
    std::vector<double> point = workloads::parsePoint(record);
    if (point.empty() || centroids_->empty()) {
        return;
    }
    size_t best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centroids_->size(); ++c) {
        double d2 = squaredDistance(point, (*centroids_)[c], dims);
        if (d2 < best_d2) {
            best_d2 = d2;
            best = c;
        }
    }
    for (size_t d = 0; d < point.size(); ++d) {
        ctx.write(sumKey(best, d), point[d]);
    }
    ctx.write(countKey(best), 1.0);
    // User-defined quality metric: full-dimension SSE of the assignment.
    double full_d2 = squaredDistance(
        point, (*centroids_)[best],
        static_cast<uint32_t>(point.size()));
    ctx.write("sse", full_d2);
}

void
KMeansApp::Mapper::mapPrecise(const std::string& record, mr::MapContext& ctx)
{
    assign(record, ctx, std::numeric_limits<uint32_t>::max());
}

void
KMeansApp::Mapper::mapApprox(const std::string& record, mr::MapContext& ctx)
{
    assign(record, ctx, approx_dims_);
}

mr::JobConfig
KMeansApp::jobConfig(uint64_t points_per_block, uint32_t num_reducers)
{
    mr::JobConfig config;
    config.name = "KMeans";
    config.num_reducers = num_reducers;
    double scale = 300.0 / static_cast<double>(points_per_block);
    config.map_cost.t0 = 1.0;
    config.map_cost.t_read = 0.004 * scale;
    config.map_cost.t_process = 0.03 * scale;
    // The approximate variant checks half the dimensions.
    config.map_cost.approx_process_factor = 0.5;
    config.map_cost.noise_sigma = 0.03;
    config.reduce_cost.t0 = 1.0;
    config.reduce_cost.t_record = 2e-5;
    return config;
}

KMeansApp::Result
KMeansApp::run(sim::Cluster& cluster, const hdfs::BlockDataset& dataset,
               hdfs::NameNode& namenode, const core::ApproxConfig& approx,
               Centroids initial, int iterations)
{
    Result result;
    result.centroids = std::move(initial);
    core::ApproxJobRunner runner(cluster, dataset, namenode);
    uint32_t approx_dims = result.centroids.empty()
                               ? 1
                               : std::max<uint32_t>(
                                     1, static_cast<uint32_t>(
                                            result.centroids[0].size() / 2));

    for (int iter = 0; iter < iterations; ++iter) {
        auto centroids =
            std::make_shared<const Centroids>(result.centroids);
        mr::JobConfig config = jobConfig(dataset.itemsInBlock(0));
        char name[48];
        std::snprintf(name, sizeof(name), "KMeans-iter%d", iter);
        config.name = name;

        mr::JobResult job = runner.runUserDefined(
            config, approx,
            [centroids, approx_dims] {
                return std::make_unique<Mapper>(centroids, approx_dims);
            },
            [] { return std::make_unique<mr::SumReducer>(); });

        result.runtime += job.runtime;
        result.energy_wh += job.energy_wh;
        ++result.iterations;

        // Recompute centroids from the emitted sums/counts.
        auto by_key = job.toMap();
        Centroids next = result.centroids;
        for (size_t c = 0; c < next.size(); ++c) {
            const mr::OutputRecord* count = nullptr;
            auto it = by_key.find(countKey(c));
            if (it != by_key.end()) {
                count = &it->second;
            }
            if (count == nullptr || count->value <= 0.0) {
                continue;  // empty cluster keeps its centroid
            }
            for (size_t d = 0; d < next[c].size(); ++d) {
                auto sit = by_key.find(sumKey(c, d));
                if (sit != by_key.end()) {
                    next[c][d] = sit->second.value / count->value;
                }
            }
        }
        result.centroids = std::move(next);
        auto sse = by_key.find("sse");
        result.sse = sse != by_key.end() ? sse->second.value : 0.0;
    }
    return result;
}

}  // namespace approxhadoop::apps
