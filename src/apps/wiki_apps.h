#ifndef APPROXHADOOP_APPS_WIKI_APPS_H_
#define APPROXHADOOP_APPS_WIKI_APPS_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/sampling_reducer.h"
#include "mapreduce/job.h"
#include "mapreduce/job_config.h"

namespace approxhadoop::apps {

/**
 * WikiLength (paper Section 5.2): histogram of Wikipedia article
 * lengths. The Map phase emits <size_bin, 1> per article; the Reduce
 * phase sums per bin. Error estimation: multi-stage sampling (kCount).
 */
class WikiLength
{
  public:
    static constexpr int kBinWidthBytes = 100;

    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;
    };

    /** Bin key for an article size ("len00042" style, sortable). */
    static std::string binKey(uint64_t size_bytes);

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();

    /**
     * Cost model calibrated to the paper's Xeon cluster: ~70 s per map
     * task over a 400-article block, with input sampling able to save
     * ~21% (Figure 6(a)) because reading dominates processing.
     *
     * @param items_per_block articles per block of the dataset in use
     */
    static mr::JobConfig jobConfig(uint64_t items_per_block = 400,
                                   uint32_t num_reducers = 1);

    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kCount;
};

/**
 * WikiPageRank (paper Section 5.2): counts incoming links per article
 * (the core PageRank kernel). Map emits <target_article, 1> per link;
 * Reduce sums. Error estimation: multi-stage sampling (kCount).
 */
class WikiPageRank
{
  public:
    class Mapper : public core::MultiStageSamplingMapper
    {
      public:
        void map(const std::string& record, mr::MapContext& ctx) override;
        void mapBatch(const std::string_view* records, size_t count,
                      mr::MapContext& ctx) override;

      private:
        /** Scratch for link views, reused across records. */
        std::vector<std::string_view> links_;
    };

    static mr::Job::MapperFactory mapperFactory();
    static mr::Job::ReducerFactory preciseReducerFactory();
    static mr::JobConfig jobConfig(uint64_t items_per_block = 400,
                                   uint32_t num_reducers = 1);

    static constexpr core::MultiStageSamplingReducer::Op kOp =
        core::MultiStageSamplingReducer::Op::kCount;
};

}  // namespace approxhadoop::apps

#endif  // APPROXHADOOP_APPS_WIKI_APPS_H_
