#ifndef APPROXHADOOP_CHAOS_SCENARIO_H_
#define APPROXHADOOP_CHAOS_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ft/fault_plan.h"
#include "ft/recovery_policy.h"

namespace approxhadoop::chaos {

/**
 * One randomized chaos scenario: a complete job description — workload,
 * input shape, approximation settings, recovery policy, thread count,
 * and fault plan — that the invariant oracle (chaos/oracle.h) can run
 * and check.
 *
 * A scenario is a *pure function of (family seed, index)*: regenerating
 * index i from the same family seed reproduces it bit-identically, which
 * is what makes `approxchaos --seed S --scenario I` an exact replay and
 * lets CI compare two independent generations of the same scenario.
 */
struct Scenario
{
    /** Generator family seed this scenario was drawn from. */
    uint64_t family_seed = 0;
    /** Index within the family (the scenario's replay handle). */
    uint64_t index = 0;

    /** Aggregation workload name (apps::aggregationWorkloads row). */
    std::string workload;

    uint64_t blocks = 0;
    uint64_t items = 0;
    uint32_t reducers = 1;
    /** Parallel thread count the determinism check compares against 1. */
    uint32_t threads = 2;
    uint64_t job_seed = 0;

    /** Input sampling ratio (1.0 = full input). */
    double sampling = 1.0;
    /** Target relative error; active only when has_target. */
    bool has_target = false;
    double target = 0.0;

    ft::FailureMode mode = ft::FailureMode::kRetry;
    uint32_t max_attempts = 4;
    uint64_t checkpoint_interval = 8;
    double heartbeat_ms = 1000.0;
    double timeout_ms = 10000.0;

    ft::FaultPlan plan;

    /**
     * Number of jobs run concurrently through the multi-tenant
     * JobService (src/service/). 1 = the classic standalone path. > 1
     * routes the oracle through the service: the same workload is
     * submitted concurrent_jobs times with staggered arrivals and
     * derived per-job seeds, and the invariants shift to service-level
     * ones (same-spec report byte-identity, per-job counter
     * conservation under slot contention, no leaked slots). Scenarios
     * in this slice never carry server crashes or driver crashes: a
     * whole-server crash cannot be attributed to one job when several
     * tenants hold slots on it, and the JobService rejects dcrash=
     * plans outright.
     */
    uint32_t concurrent_jobs = 1;

    /**
     * Fleet spec in the cluster grammar ("xeon10", "atom60", or a mixed
     * fleet like "10xeon+20atom"). Heterogeneous fleets exercise the
     * speed-aware scheduler; every generated spec has >= 10 servers so
     * legacy `server=ID` draws (ids 0..9) stay in range.
     */
    std::string cluster = "xeon10";

    /** One-line description for logs. */
    std::string describe() const;

    /**
     * Ready-to-paste `approxrun` command line reproducing this scenario
     * outside the harness (same job config, fault plan, and seeds).
     */
    std::string approxrunCommand() const;
};

/**
 * Seeded scenario generator over the default chaos space: every
 * FaultPlan key (crash, rcrash, straggler, corrupt, badrec, server,
 * revoke, addsrv, drain, dcrash), every failure mode, 1-8 threads,
 * sampled/targeted/full inputs, and a slice of retry-exhaustion
 * scenarios that must end in the exit-3 contract. generate(i) is deterministic and order-independent — it
 * never mutates generator state — so scenarios can be regenerated or
 * re-run individually.
 */
class ScenarioGenerator
{
  public:
    explicit ScenarioGenerator(uint64_t family_seed)
        : family_seed_(family_seed)
    {
    }

    /** Workload names scenarios are drawn from (count/sum aggregations
     *  whose map emissions the oracle can replay analytically). */
    static const std::vector<std::string>& workloadNames();

    Scenario generate(uint64_t index) const;

  private:
    uint64_t family_seed_;
};

}  // namespace approxhadoop::chaos

#endif  // APPROXHADOOP_CHAOS_SCENARIO_H_
