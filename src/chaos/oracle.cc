#include "chaos/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>

#include "apps/aggregation_registry.h"
#include "common/random.h"
#include "core/approx_config.h"
#include "core/approx_input_format.h"
#include "core/approx_job.h"
#include "hdfs/namenode.h"
#include "journal/journal.h"
#include "service/job_service.h"
#include "sim/cluster.h"
#include "stats/two_stage.h"

namespace approxhadoop::chaos {

namespace {

constexpr double kConfidence = 0.95;

/** |a - b| within 1e-9 relative (absolute near zero); infinities must
 *  agree in kind. Matches the tolerance the integration tests pin the
 *  absorb-vs-drop identity at. */
bool
closeEnough(double a, double b)
{
    if (std::isinf(a) || std::isinf(b)) {
        return std::isinf(a) && std::isinf(b) &&
               std::signbit(a) == std::signbit(b);
    }
    double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= 1e-9 * scale;
}

std::string
formatKv(const char* name, double a, double b)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%s: %.17g vs %.17g", name, a, b);
    return buf;
}

/** First counter field that differs between the two runs, or "". */
std::string
countersMismatch(const mr::Counters& a, const mr::Counters& b)
{
#define APPROX_CHAOS_CMP(field)                                            \
    if (a.field != b.field) {                                              \
        return formatKv(#field, static_cast<double>(a.field),              \
                        static_cast<double>(b.field));                     \
    }
    APPROX_CHAOS_CMP(maps_total)
    APPROX_CHAOS_CMP(maps_completed)
    APPROX_CHAOS_CMP(maps_killed)
    APPROX_CHAOS_CMP(maps_dropped)
    APPROX_CHAOS_CMP(maps_speculated)
    APPROX_CHAOS_CMP(maps_endgame_speculated)
    APPROX_CHAOS_CMP(map_slots_acquired)
    APPROX_CHAOS_CMP(map_slots_released)
    APPROX_CHAOS_CMP(map_slot_seconds)
    APPROX_CHAOS_CMP(map_attempts_launched)
    APPROX_CHAOS_CMP(map_attempts_failed)
    APPROX_CHAOS_CMP(map_attempts_cancelled)
    APPROX_CHAOS_CMP(maps_retried)
    APPROX_CHAOS_CMP(maps_absorbed)
    APPROX_CHAOS_CMP(server_crashes)
    APPROX_CHAOS_CMP(servers_added)
    APPROX_CHAOS_CMP(servers_revoked)
    APPROX_CHAOS_CMP(servers_drained)
    APPROX_CHAOS_CMP(servers_retired)
    APPROX_CHAOS_CMP(wasted_attempt_seconds)
    APPROX_CHAOS_CMP(chunks_corrupted)
    APPROX_CHAOS_CMP(chunk_refetches)
    APPROX_CHAOS_CMP(map_outputs_lost)
    APPROX_CHAOS_CMP(bad_records_skipped)
    APPROX_CHAOS_CMP(chunks_delivered)
    APPROX_CHAOS_CMP(reduce_attempts_failed)
    APPROX_CHAOS_CMP(reducer_checkpoints)
    APPROX_CHAOS_CMP(chunks_replayed)
    APPROX_CHAOS_CMP(timeouts_detected)
    APPROX_CHAOS_CMP(detection_wait_seconds)
    APPROX_CHAOS_CMP(items_total)
    APPROX_CHAOS_CMP(items_read)
    APPROX_CHAOS_CMP(items_processed)
    APPROX_CHAOS_CMP(records_shuffled)
    APPROX_CHAOS_CMP(local_maps)
    APPROX_CHAOS_CMP(remote_maps)
    APPROX_CHAOS_CMP(waves)
#undef APPROX_CHAOS_CMP
    return "";
}

/** Headline record: largest finite CI half-width (nullptr if none). */
const mr::OutputRecord*
headlineRecord(const mr::JobResult& result)
{
    const mr::OutputRecord* worst = nullptr;
    for (const mr::OutputRecord& r : result.output) {
        if (!r.has_bound || !std::isfinite(r.errorBound())) {
            continue;
        }
        if (worst == nullptr || r.errorBound() > worst->errorBound()) {
            worst = &r;
        }
    }
    return worst;
}

mr::JobConfig
scenarioJobConfig(const apps::AggregationWorkload& workload,
                  const Scenario& s, uint32_t threads)
{
    mr::JobConfig config = workload.job_config(s.items, s.reducers);
    config.seed = s.job_seed;
    config.cluster_spec = s.cluster;
    config.fault_plan = s.plan;
    config.failure_mode = s.mode;
    config.recovery.max_attempts = s.max_attempts;
    config.reducer_checkpoint_interval = s.checkpoint_interval;
    config.heartbeat_interval_ms = s.heartbeat_ms;
    config.task_timeout_ms = s.timeout_ms;
    config.num_exec_threads = threads;
    return config;
}

core::ApproxConfig
scenarioApproxConfig(const Scenario& s)
{
    core::ApproxConfig approx;
    approx.confidence = kConfidence;
    if (s.has_target) {
        approx.target_relative_error = s.target;
    } else {
        approx.sampling_ratio = s.sampling;
    }
    return approx;
}

/** Journal header for a dcrash= scenario's record/resume loop. */
journal::RunSpec
journalSpec(const Scenario& s, uint32_t threads)
{
    journal::RunSpec spec;
    spec.app = s.workload;
    spec.blocks = s.blocks;
    spec.items = s.items;
    spec.seed = s.job_seed;
    spec.reducers = s.reducers;
    spec.threads = threads;
    spec.cluster = s.cluster;
    spec.sampling = s.sampling;
    spec.has_target = s.has_target;
    spec.target = s.target;
    spec.confidence = kConfidence;
    spec.failure_mode = ft::toString(s.mode);
    spec.max_attempts = s.max_attempts;
    spec.checkpoint_interval = s.checkpoint_interval;
    spec.heartbeat_ms = s.heartbeat_ms;
    spec.timeout_ms = s.timeout_ms;
    spec.fault_plan = s.plan.spec();
    return spec;
}

/** First difference between two job results, or "". */
std::string
resultsMismatch(const mr::JobResult& a, const mr::JobResult& b)
{
    if (a.runtime != b.runtime) {
        return formatKv("runtime", a.runtime, b.runtime);
    }
    std::string diff = countersMismatch(a.counters, b.counters);
    if (!diff.empty()) {
        return diff;
    }
    if (a.output.size() != b.output.size()) {
        return formatKv("output size",
                        static_cast<double>(a.output.size()),
                        static_cast<double>(b.output.size()));
    }
    for (size_t i = 0; i < a.output.size(); ++i) {
        const mr::OutputRecord& x = a.output[i];
        const mr::OutputRecord& y = b.output[i];
        if (x.key != y.key || x.value != y.value || x.lower != y.lower ||
            x.upper != y.upper || x.has_bound != y.has_bound) {
            return "output record " + std::to_string(i) + " ('" + x.key +
                   "' vs '" + y.key + "') differs";
        }
    }
    return "";
}

const apps::AggregationWorkload&
workloadFor(const Scenario& s)
{
    const apps::AggregationWorkload* w =
        apps::findAggregationWorkload(s.workload);
    if (w == nullptr) {
        throw std::invalid_argument("chaos: unknown workload '" +
                                    s.workload + "'");
    }
    return *w;
}

/**
 * Recomputes the headline key's per-cluster two-stage statistics by
 * replaying the mapper over every *completed* task's sample. Possible
 * because each task's sample and map emissions are pure functions of
 * (job seed, task id, recorded sampling ratio) — the same property that
 * makes runs bit-identical across thread counts. Requires
 * bad_record_prob == 0 (record fates live inside the FaultInjector).
 */
std::vector<stats::ClusterSample>
replayClusters(const apps::AggregationWorkload& workload,
               const hdfs::BlockDataset& data, const Scenario& s,
               const mr::JobResult& result, const std::string& key,
               bool count_op, std::string& replay_error)
{
    core::ApproxTextInputFormat format;
    std::vector<stats::ClusterSample> clusters;
    for (const mr::MapTaskInfo& task : result.tasks) {
        if (task.state != mr::TaskState::kCompleted) {
            continue;
        }
        Rng sample_rng = Rng(s.job_seed).derive(0x5A5A + task.task_id);
        std::vector<uint64_t> sample = format.select(
            task.task_id, task.items_total, task.sampling_ratio,
            sample_rng);
        if (sample.size() != task.items_processed) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "task %llu replayed sample size %zu != "
                          "items_processed %llu",
                          static_cast<unsigned long long>(task.task_id),
                          sample.size(),
                          static_cast<unsigned long long>(
                              task.items_processed));
            replay_error = buf;
            return {};
        }
        std::unique_ptr<mr::Mapper> mapper = workload.mapper_factory()();
        mr::MapContext ctx(task.task_id, task.items_total, sample.size(),
                           task.approximate,
                           Rng(s.job_seed).derive(0xA11CE + task.task_id));
        mapper->setup(ctx);
        for (uint64_t index : sample) {
            mapper->map(data.item(task.task_id, index), ctx);
        }
        mapper->cleanup(ctx);

        stats::ClusterSample cluster;
        cluster.units_total = task.items_total;
        cluster.units_sampled = sample.size();
        for (const mr::KeyValue& kv : ctx.output()) {
            if (kv.key != key) {
                continue;
            }
            double v = count_op ? 1.0 : kv.value;
            ++cluster.emitted;
            cluster.sum += v;
            cluster.sum_squares += v * v;
        }
        clusters.push_back(cluster);
    }
    return clusters;
}

}  // namespace

Mutation
parseMutation(const std::string& name)
{
    if (name == "ci-widening") {
        return Mutation::kCiWidening;
    }
    if (name == "counters") {
        return Mutation::kCounters;
    }
    if (name == "determinism") {
        return Mutation::kDeterminism;
    }
    if (name == "exit-code") {
        return Mutation::kExitCode;
    }
    throw std::invalid_argument(
        "mutation must be ci-widening, counters, determinism, or "
        "exit-code (got '" +
        name + "')");
}

const char*
toString(Mutation m)
{
    switch (m) {
        case Mutation::kNone:
            return "none";
        case Mutation::kCiWidening:
            return "ci-widening";
        case Mutation::kCounters:
            return "counters";
        case Mutation::kDeterminism:
            return "determinism";
        case Mutation::kExitCode:
            return "exit-code";
    }
    return "?";
}

RunOutcome
ChaosOracle::runScenario(const Scenario& s, uint32_t threads,
                         obs::Observability* obs,
                         mr::JobConfig* config_out) const
{
    const apps::AggregationWorkload& workload = workloadFor(s);
    core::ApproxConfig approx = scenarioApproxConfig(s);

    // dcrash= scenarios run the same record/kill/resume loop approxrun
    // does, against an in-memory journal: each DriverKilledError tears
    // down the incarnation and the next one re-executes from scratch
    // with the journal verifying every re-reached epoch.
    std::unique_ptr<journal::JobJournal> jj;
    if (s.plan.hasDriverCrash()) {
        jj = journal::JobJournal::createInMemory(journalSpec(s, threads));
    }

    RunOutcome outcome;
    for (;;) {
        std::unique_ptr<hdfs::BlockDataset> data =
            workload.make_dataset(s.blocks, s.items, s.job_seed);
        mr::JobConfig config = scenarioJobConfig(workload, s, threads);
        if (jj != nullptr) {
            config.driver_crash_skip = jj->resumeCount();
        }
        if (config_out != nullptr) {
            *config_out = config;
        }
        sim::Cluster cluster(sim::ClusterConfig::parse(s.cluster));
        hdfs::NameNode namenode(cluster.numServers(), 3, s.job_seed);
        core::ApproxJobRunner runner(cluster, *data, namenode);
        runner.setObservability(obs);
        runner.setEpochSink(jj.get());
        try {
            outcome.result = runner.runAggregation(
                config, approx, workload.mapper_factory(), workload.op);
            outcome.counters = outcome.result.counters;
            break;
        } catch (const journal::DriverKilledError&) {
            if (outcome.crash_journal.empty()) {
                outcome.crash_journal = jj->bytes();
            }
            jj = journal::JobJournal::resumeBytes(jj->bytes());
        } catch (const mr::JobFailedError& e) {
            if (mutation_ == Mutation::kExitCode) {
                // The deliberate bug: swallow the failure and report an
                // empty successful result, as a runtime with a broken
                // abort path would.
                outcome.counters = e.counters;
                outcome.result.counters = e.counters;
                outcome.resumes = jj ? jj->resumeCount() : 0;
                return outcome;
            }
            outcome.failed = true;
            outcome.error = e.what();
            outcome.counters = e.counters;
            outcome.resumes = jj ? jj->resumeCount() : 0;
            return outcome;
        }
    }
    outcome.resumes = jj ? jj->resumeCount() : 0;

    if (mutation_ == Mutation::kCiWidening) {
        for (mr::OutputRecord& r : outcome.result.output) {
            if (!r.has_bound) {
                continue;
            }
            r.lower = r.value - (r.value - r.lower) / 2.0;
            r.upper = r.value + (r.upper - r.value) / 2.0;
        }
    }
    if (mutation_ == Mutation::kCounters) {
        ++outcome.result.counters.maps_completed;
        outcome.counters = outcome.result.counters;
    }
    if (mutation_ == Mutation::kDeterminism && threads > 1 &&
        !outcome.result.output.empty()) {
        outcome.result.output[0].value +=
            1e-9 * (1.0 + std::fabs(outcome.result.output[0].value));
    }
    return outcome;
}

namespace {

/**
 * Service-level invariants for the multi-job scenario slice: the same
 * workload submitted concurrent_jobs times through the JobService with
 * staggered arrivals and derived per-job seeds. Checks, in order: the
 * termination contract (the service itself must not throw), same-spec
 * report byte-identity, per-completed-job counter conservation under
 * slot contention, job accounting (submitted = completed + failed), and
 * that no map or reduce slot leaks past the run.
 */
std::vector<Violation>
checkMultiJob(const Scenario& s)
{
    std::vector<Violation> violations;
    auto violate = [&violations](const std::string& invariant,
                                 const std::string& detail) {
        violations.push_back(Violation{invariant, detail});
    };

    service::ServiceSpec spec;
    service::TenantClass hi;
    hi.name = "t0";
    hi.priority = 0;
    hi.weight = 2.0;
    service::TenantClass lo;
    lo.name = "t1";
    lo.priority = 1;
    lo.weight = 1.0;
    spec.tenants = {hi, lo};
    spec.duration = 600.0;
    spec.seed = s.job_seed;
    spec.blocks = s.blocks;
    spec.items = s.items;
    spec.reducers = s.reducers;
    spec.target_rel_error = s.has_target ? s.target : 0.05;
    spec.endgame_left_percent = 25.0;
    spec.workloads = {s.workload};
    spec.pressure_threshold = 2;
    spec.cluster = s.cluster;
    spec.fault_plan = s.plan;
    // Fleet-changing faults are not attributable to one tenant (the
    // JobService rejects them outright); the generator already strips
    // them, but hand-built scenarios may not.
    spec.fault_plan.server_crashes.clear();
    spec.fault_plan.revocations.clear();
    spec.fault_plan.scale_outs.clear();
    spec.fault_plan.drains.clear();
    // Likewise driver crashes: the JobService rejects dcrash= plans (a
    // driver kill cannot be attributed to one tenant).
    spec.fault_plan.driver_crashes.clear();

    std::vector<service::JobArrival> arrivals;
    Rng seeds = Rng(s.job_seed).derive(0x5E41CE);
    for (uint32_t j = 0; j < s.concurrent_jobs; ++j) {
        service::JobArrival a;
        a.time = 0.5 * j;
        a.tenant = j % 2;
        a.workload = s.workload;
        a.job_seed = 1 + seeds.uniformInt(1000000000);
        arrivals.push_back(a);
    }

    std::string first_json;
    std::string second_json;
    try {
        service::JobService first(spec, arrivals);
        service::ServiceReport report = first.run();
        first_json = report.toJson();

        for (const sim::Server& server : first.cluster().servers()) {
            if (server.busyMapSlots() != 0 ||
                server.busyReduceSlots() != 0) {
                char buf[128];
                std::snprintf(buf, sizeof(buf),
                              "server %u still holds %d map / %d reduce "
                              "slots after the run",
                              server.id(), server.busyMapSlots(),
                              server.busyReduceSlots());
                violate("conservation", buf);
            }
        }

        uint64_t completed = 0;
        uint64_t failed = 0;
        for (const service::JobService::JobOutcome& outcome :
             first.outcomes()) {
            if (outcome.failed) {
                ++failed;
                continue;
            }
            ++completed;
            std::string conservation =
                outcome.result.counters.conservationViolation(s.reducers);
            if (!conservation.empty()) {
                violate("conservation",
                        outcome.arrival.workload + " seed " +
                            std::to_string(outcome.arrival.job_seed) +
                            ": " + conservation);
            }
        }
        if (completed != report.jobs_completed ||
            failed != report.jobs_failed ||
            report.jobs_submitted != s.concurrent_jobs ||
            completed + failed != report.jobs_submitted) {
            char buf[160];
            std::snprintf(
                buf, sizeof(buf),
                "job accounting: submitted=%llu completed=%llu "
                "failed=%llu (outcomes: %llu/%llu, expected %u jobs)",
                static_cast<unsigned long long>(report.jobs_submitted),
                static_cast<unsigned long long>(report.jobs_completed),
                static_cast<unsigned long long>(report.jobs_failed),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(failed),
                s.concurrent_jobs);
            violate("conservation", buf);
        }

        service::JobService second(spec, arrivals);
        second_json = second.run().toJson();
    } catch (const std::exception& e) {
        violate("termination",
                std::string("service run threw: ") + e.what());
        return violations;
    }

    if (first_json != second_json) {
        violate("determinism",
                "same-spec service reports differ byte-wise");
    }
    return violations;
}

}  // namespace

std::vector<Violation>
ChaosOracle::check(const Scenario& s) const
{
    if (s.concurrent_jobs > 1) {
        return checkMultiJob(s);
    }

    std::vector<Violation> violations;
    auto violate = [&violations](const std::string& invariant,
                                 const std::string& detail) {
        violations.push_back(Violation{invariant, detail});
    };

    RunOutcome serial;
    RunOutcome parallel;
    try {
        serial = runScenario(s, 1);
        parallel = runScenario(s, s.threads);
    } catch (const std::exception& e) {
        // Anything but the contractual JobFailedError is itself a
        // termination-contract violation (crash instead of a clean
        // failure classification).
        violate("termination",
                std::string("unexpected exception: ") + e.what());
        return violations;
    }

    // --- termination / exit-code contract -----------------------------
    if (serial.failed != parallel.failed) {
        violate("determinism",
                "1-thread and parallel runs disagree on job failure");
        return violations;
    }

    // --- crash recovery: resume equivalence + torn-journal hardening --
    // A dcrash= scenario already ran through the journal kill/resume
    // loop above; the resumed run must be indistinguishable from the
    // same scenario with its driver crashes removed, and the journal
    // image captured at the moment of the kill must survive arbitrary
    // truncation (recover a sealed prefix or reject loudly — never
    // crash, never invent an epoch).
    if (s.plan.hasDriverCrash()) {
        Scenario uninterrupted = s;
        uninterrupted.plan.driver_crashes.clear();
        RunOutcome base;
        try {
            base = runScenario(uninterrupted, 1);
        } catch (const std::exception& e) {
            violate("termination",
                    std::string("dcrash-free baseline threw: ") + e.what());
            return violations;
        }
        if (base.failed != serial.failed) {
            violate("resume-equivalence",
                    "resumed and uninterrupted runs disagree on job "
                    "failure");
        } else if (base.failed) {
            if (base.error != serial.error) {
                violate("resume-equivalence",
                        "failure messages differ: '" + serial.error +
                            "' vs '" + base.error + "'");
            }
        } else {
            std::string diff =
                resultsMismatch(serial.result, base.result);
            if (!diff.empty()) {
                violate("resume-equivalence",
                        "resumed run differs from the uninterrupted "
                        "one: " +
                            diff);
            }
        }

        const std::string& image = serial.crash_journal;
        if (!image.empty()) {
            size_t full_epochs = 0;
            try {
                journal::LoadedJournal full = journal::parseJournal(image);
                full_epochs = full.epochs.size();
            } catch (const std::exception& e) {
                violate("torn-journal",
                        std::string("crash-time journal image does not "
                                    "parse: ") +
                            e.what());
            }
            // ~100 cut points spread over the image (the exhaustive
            // per-byte sweep lives in the journal format tests; the
            // soak's job is catching regressions on real crash images).
            size_t cuts = std::min<size_t>(image.size(), 96);
            size_t last_epochs = 0;
            for (size_t c = 0; c <= cuts && cuts > 0; ++c) {
                size_t len = image.size() * c / cuts;
                std::string prefix = image.substr(0, len);
                char where[48];
                std::snprintf(where, sizeof(where), "cut at byte %zu",
                              len);
                try {
                    journal::LoadedJournal loaded =
                        journal::parseJournal(prefix);
                    if (loaded.epochs.size() > full_epochs ||
                        loaded.epochs.size() < last_epochs) {
                        violate("torn-journal",
                                std::string(where) +
                                    ": recovered epoch count is not a "
                                    "monotone prefix of the full image");
                        break;
                    }
                    last_epochs = loaded.epochs.size();
                    std::unique_ptr<journal::JobJournal> recovered =
                        journal::JobJournal::resumeBytes(prefix);
                    size_t expect = loaded.epochs.size() -
                                    loaded.resume_markers;
                    if (recovered->epochsToVerify() != expect) {
                        violate("torn-journal",
                                std::string(where) +
                                    ": resume does not verify exactly "
                                    "the sealed epochs");
                        break;
                    }
                } catch (const journal::JournalError&) {
                    // Contractual rejection — only legitimate before
                    // any epoch was recoverable (a severed header).
                    if (last_epochs != 0) {
                        violate("torn-journal",
                                std::string(where) +
                                    ": rejected after epochs were "
                                    "recoverable at an earlier cut");
                        break;
                    }
                } catch (const std::exception& e) {
                    violate("torn-journal",
                            std::string(where) +
                                ": non-journal exception: " + e.what());
                    break;
                }
            }
        }
    }

    if (serial.failed) {
        if (s.mode != ft::FailureMode::kRetry) {
            violate("exit-code",
                    "job failed under " + std::string(ft::toString(s.mode)) +
                        " mode (only retry may exhaust attempts): " +
                        serial.error);
        }
        if (serial.error != parallel.error) {
            violate("determinism", "failure messages differ: '" +
                                       serial.error + "' vs '" +
                                       parallel.error + "'");
        }
        std::string diff =
            countersMismatch(serial.counters, parallel.counters);
        if (!diff.empty()) {
            violate("determinism", "counters at failure differ: " + diff);
        }
        return violations;
    }
    if (s.mode == ft::FailureMode::kRetry && !s.has_target &&
        serial.counters.maps_completed != serial.counters.maps_total) {
        // Retry semantics are all-or-abort: a "successful" run that
        // silently lost maps is the wrong-but-zero-exit bug.
        char buf[128];
        std::snprintf(
            buf, sizeof(buf),
            "retry-mode run reported success with %llu/%llu maps",
            static_cast<unsigned long long>(serial.counters.maps_completed),
            static_cast<unsigned long long>(serial.counters.maps_total));
        violate("exit-code", buf);
    }

    // --- determinism: 1 vs N threads, bit-identical -------------------
    if (serial.result.runtime != parallel.result.runtime) {
        violate("determinism",
                formatKv("runtime", serial.result.runtime,
                         parallel.result.runtime));
    }
    if (serial.result.energy_wh != parallel.result.energy_wh) {
        violate("determinism",
                formatKv("energy_wh", serial.result.energy_wh,
                         parallel.result.energy_wh));
    }
    std::string diff =
        countersMismatch(serial.result.counters, parallel.result.counters);
    if (!diff.empty()) {
        violate("determinism", "counters differ: " + diff);
    }
    auto serial_map = serial.result.toMap();
    auto parallel_map = parallel.result.toMap();
    if (serial_map.size() != parallel_map.size()) {
        violate("determinism",
                formatKv("output keys",
                         static_cast<double>(serial_map.size()),
                         static_cast<double>(parallel_map.size())));
    } else {
        for (const auto& [key, rec] : serial_map) {
            auto it = parallel_map.find(key);
            if (it == parallel_map.end()) {
                violate("determinism", "key '" + key +
                                           "' missing from parallel run");
                break;
            }
            const mr::OutputRecord& other = it->second;
            if (rec.value != other.value || rec.lower != other.lower ||
                rec.upper != other.upper ||
                rec.has_bound != other.has_bound) {
                violate("determinism",
                        "key '" + key + "' differs: " +
                            formatKv("value", rec.value, other.value));
                break;
            }
        }
    }

    // --- counter conservation -----------------------------------------
    std::string conservation =
        serial.result.counters.conservationViolation(s.reducers);
    if (!conservation.empty()) {
        violate("conservation", conservation);
    }

    // --- statistical soundness: the absorb identity -------------------
    // Whenever the run's per-task samples can be replayed, the reported
    // headline estimate and CI must equal the analytic two-stage
    // estimator over the completed clusters: a failed/absorbed task
    // widens the bound *exactly* like a dropped cluster.
    if (s.plan.bad_record_prob == 0.0 && !s.has_target) {
        const mr::OutputRecord* headline = headlineRecord(serial.result);
        if (headline != nullptr &&
            serial.result.counters.maps_completed >= 2) {
            const apps::AggregationWorkload& workload = workloadFor(s);
            std::unique_ptr<hdfs::BlockDataset> data =
                workload.make_dataset(s.blocks, s.items, s.job_seed);
            bool count_op =
                workload.op == core::MultiStageSamplingReducer::Op::kCount;
            std::string replay_error;
            std::vector<stats::ClusterSample> clusters = replayClusters(
                workload, *data, s, serial.result, headline->key,
                count_op, replay_error);
            if (!replay_error.empty()) {
                violate("ci-widening", "replay failed: " + replay_error);
            } else {
                stats::Estimate expected =
                    count_op ? stats::TwoStageEstimator::estimateCount(
                                   clusters, serial.result.counters
                                                 .maps_total,
                                   kConfidence)
                             : stats::TwoStageEstimator::estimateSum(
                                   clusters, serial.result.counters
                                                 .maps_total,
                                   kConfidence);
                if (!closeEnough(headline->value, expected.value)) {
                    violate("ci-widening",
                            "key '" + headline->key + "' " +
                                formatKv("estimate", headline->value,
                                         expected.value));
                } else if (!closeEnough(headline->errorBound(),
                                        expected.error_bound)) {
                    violate(
                        "ci-widening",
                        "key '" + headline->key +
                            "' CI half-width does not match the "
                            "analytic dropped-cluster estimator: " +
                            formatKv("bound", headline->errorBound(),
                                     expected.error_bound));
                }
            }
        }
    }
    return violations;
}

std::optional<Violation>
ChaosOracle::coverageBattery(uint64_t seed, int trials) const
{
    if (trials <= 0) {
        return std::nullopt;
    }
    const apps::AggregationWorkload& workload = *apps::findAggregationWorkload("projectpop");
    int valid = 0;
    int hits = 0;
    for (int trial = 0; trial < trials; ++trial) {
        Rng rng = Rng(seed).derive(0xBA77E + trial);

        Scenario s;
        s.family_seed = seed;
        s.index = static_cast<uint64_t>(trial);
        s.workload = workload.name;
        s.blocks = 36;
        s.items = 24;
        s.reducers = 1;
        s.threads = 1;
        s.job_seed = 1 + rng.uniformInt(1000000000);
        s.sampling = 0.5;
        s.mode = ft::FailureMode::kAbsorb;
        s.timeout_ms = 0.0;
        s.plan.task_crash_prob = 0.15;
        s.plan.chunk_corrupt_prob = 0.1;
        s.plan.seed = 1 + static_cast<uint64_t>(trial);

        RunOutcome outcome = runScenario(s, 1);
        if (outcome.failed) {
            continue;  // absorb mode never fails; flagged by check()
        }
        const mr::OutputRecord* headline = headlineRecord(outcome.result);
        if (headline == nullptr) {
            continue;
        }
        std::unique_ptr<hdfs::BlockDataset> data =
            workload.make_dataset(s.blocks, s.items, s.job_seed);
        mr::JobConfig config = scenarioJobConfig(workload, s, 1);
        mr::JobResult precise = apps::runPreciseReference(
            workload, *data, config, sim::ClusterConfig::xeon10(),
            s.job_seed);
        const mr::OutputRecord* exact = precise.find(headline->key);
        if (exact == nullptr) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "trial %d: headline key '%s' missing from the "
                          "precise reference",
                          trial, headline->key.c_str());
            return Violation{"coverage", buf};
        }
        ++valid;
        double deviation = std::fabs(headline->value - exact->value);
        if (deviation <=
            headline->errorBound() * (1.0 + 1e-12) + 1e-9) {
            ++hits;
        }
    }
    if (valid < trials / 2) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "only %d/%d battery trials produced a bounded "
                      "estimate",
                      valid, trials);
        return Violation{"coverage", buf};
    }
    double rate = static_cast<double>(hits) / static_cast<double>(valid);
    double tolerance =
        3.0 * std::sqrt(kConfidence * (1.0 - kConfidence) /
                        static_cast<double>(valid));
    double threshold = kConfidence - tolerance;
    if (rate < threshold) {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "CI covered the exact answer in %d/%d trials "
                      "(%.3f), below the binomial floor %.3f for "
                      "confidence %.2f",
                      hits, valid, rate, threshold, kConfidence);
        return Violation{"coverage", buf};
    }
    return std::nullopt;
}

Scenario
ChaosOracle::mutationProbe(Mutation mutation)
{
    Scenario s;
    s.workload = "projectpop";
    s.blocks = 40;
    s.items = 12;
    s.reducers = 2;
    s.threads = 4;
    s.job_seed = 12345;
    s.sampling = 1.0;
    s.mode = ft::FailureMode::kAbsorb;
    s.max_attempts = 4;
    s.checkpoint_interval = 8;
    s.heartbeat_ms = 500.0;
    s.timeout_ms = 2000.0;
    switch (mutation) {
        case Mutation::kNone:
        case Mutation::kCounters:
        case Mutation::kDeterminism:
            break;  // a healthy faulted run exercises both checks
        case Mutation::kCiWidening:
            // A permanent revocation storm mid-wave is the *only* fault:
            // the maps orphaned by the revoked servers are absorbed,
            // guaranteeing a nonzero CI for the halving to corrupt — and
            // forcing the shrinker to keep the revoke key in the minimal
            // reproducer (dropping it makes the run exact again).
            {
                ft::FaultPlan::Revocation storm;
                storm.count = 3;
                storm.at = 3.0;
                storm.down_for = -1.0;
                s.plan.revocations.push_back(storm);
            }
            s.plan.seed = 7;
            break;
        case Mutation::kExitCode:
            // Guaranteed retry exhaustion: the failure the mutated
            // oracle swallows.
            s.mode = ft::FailureMode::kRetry;
            s.plan.task_crash_prob = 1.0;
            s.max_attempts = 2;
            break;
    }
    return s;
}

}  // namespace approxhadoop::chaos
