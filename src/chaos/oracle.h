#ifndef APPROXHADOOP_CHAOS_ORACLE_H_
#define APPROXHADOOP_CHAOS_ORACLE_H_

#include <optional>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "mapreduce/job.h"

namespace approxhadoop::obs {
struct Observability;
}  // namespace approxhadoop::obs

namespace approxhadoop::chaos {

/**
 * Deliberate single-invariant breakages used to prove the oracle has
 * teeth: `approxchaos --mutate X` must flag a violation, and CI asserts
 * it does. Each mutation corrupts the *observation* of an otherwise
 * healthy run (never the runtime itself), modeling the class of bug the
 * matching invariant exists to catch.
 */
enum class Mutation {
    kNone,
    /** Halves every reported CI half-width — the "skipped one CI
     *  widening" bug; caught by the absorb-identity / coverage checks. */
    kCiWidening,
    /** Over-reports completed maps by one; caught by conservation. */
    kCounters,
    /** Perturbs the parallel run's first output value in the last bit;
     *  caught by the 1-vs-N-thread determinism check. */
    kDeterminism,
    /** Swallows JobFailedError and reports success — the "wrong but
     *  zero exit" bug; caught by the exit-code contract. */
    kExitCode,
};

/** Parses "ci-widening", "counters", "determinism", "exit-code".
 *  @throws std::invalid_argument otherwise */
Mutation parseMutation(const std::string& name);
const char* toString(Mutation m);

/** One invariant violation found by the oracle. */
struct Violation
{
    /** Which invariant failed ("determinism", "conservation", ...). */
    std::string invariant;
    /** Human-readable specifics (values, keys, counters involved). */
    std::string detail;
};

/** Outcome of one job run under a scenario. */
struct RunOutcome
{
    /** True when the job aborted with JobFailedError (approxrun's
     *  exit-3 class). Any *other* exception is itself a violation. */
    bool failed = false;
    std::string error;
    mr::JobResult result;
    /** Counter snapshot (from the result, or the error on failure). */
    mr::Counters counters;
    /** Driver kills survived via journal resume. 0 when the scenario
     *  carries no dcrash= faults (or none fired before the job ended). */
    uint32_t resumes = 0;
    /** Journal image captured at the first driver kill — the crash-time
     *  snapshot the torn-journal invariant truncates. Empty when no
     *  kill fired. */
    std::string crash_journal;
};

/**
 * The invariant oracle. For each scenario it runs the job twice (1
 * thread and scenario.threads) and checks:
 *
 *  - determinism: outputs, counters, and runtime bit-identical across
 *    thread counts;
 *  - counter conservation: Counters::conservationViolation();
 *  - termination/exit-code contract: only retry mode may fail the job,
 *    and a successful retry-mode run completed every map;
 *  - statistical soundness (absorb identity): when the scenario's
 *    per-task samples can be replayed (no bad records), the headline
 *    key's estimate and CI must equal the analytic two-stage estimator
 *    run over the completed clusters — i.e. absorbed/failed tasks widen
 *    the CI *exactly* like dropped clusters (paper Section 3.1);
 *  - crash recovery (dcrash= scenarios): the run is wrapped in the
 *    journal record/kill/resume loop, and the resumed run must match
 *    the same scenario with its driver crashes removed bit-for-bit
 *    (resume equivalence); truncating the crash-time journal image at
 *    arbitrary byte offsets must recover a sealed prefix or throw
 *    JournalError — never crash and never invent an epoch.
 *
 * The CI *coverage* property is probabilistic per scenario, so it is
 * checked as a separate seeded battery (coverageBattery) with a
 * binomial tolerance rather than per run.
 */
class ChaosOracle
{
  public:
    explicit ChaosOracle(Mutation mutation = Mutation::kNone)
        : mutation_(mutation)
    {
    }

    /**
     * Runs the scenario once at the given thread count (applying this
     * oracle's mutation to the observation). When @p obs is non-null the
     * run records into it (trace + metrics) and @p config_out, if also
     * non-null, receives the job configuration — enough for the caller
     * to build an obs::JobReport of the run.
     */
    RunOutcome runScenario(const Scenario& scenario, uint32_t threads,
                           obs::Observability* obs = nullptr,
                           mr::JobConfig* config_out = nullptr) const;

    /** Runs and checks one scenario; empty result = all invariants hold. */
    std::vector<Violation> check(const Scenario& scenario) const;

    /**
     * Statistical-soundness battery: @p trials seeded absorb-mode runs
     * of a sampled aggregation under crashes and corruption, each
     * compared against a fault-free precise reference. The exact answer
     * must fall inside the reported CI of the headline key at least
     * confidence - 3*sqrt(confidence*(1-confidence)/trials) of the time
     * (three-sigma binomial tolerance, so a sound estimator essentially
     * never trips it while a broken widening reliably does).
     */
    std::optional<Violation> coverageBattery(uint64_t seed,
                                             int trials) const;

    /**
     * A handcrafted scenario guaranteed to exercise the code path the
     * given mutation corrupts (e.g. absorbed clusters with a nonzero CI
     * for kCiWidening, retry exhaustion for kExitCode). `approxchaos
     * --mutate X` runs it ahead of the random soak so the self-test is
     * deterministic.
     */
    static Scenario mutationProbe(Mutation mutation);

  private:
    Mutation mutation_;
};

}  // namespace approxhadoop::chaos

#endif  // APPROXHADOOP_CHAOS_ORACLE_H_
