#include "chaos/scenario.h"

#include <cstdio>
#include <cstdlib>

#include "common/random.h"

namespace approxhadoop::chaos {

namespace {

/** Shortest decimal form that strtod() reads back bit-identically;
 *  integral values print without an exponent (500, not 5e+02). */
std::string
formatDouble(double v)
{
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -1e15 && v < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v) {
            break;
        }
    }
    return buf;
}

}  // namespace

std::string
Scenario::describe() const
{
    char buf[320];
    std::string jobs_dim =
        concurrent_jobs > 1 ? " jobs=" + std::to_string(concurrent_jobs)
                            : "";
    std::string fleet_dim =
        cluster != "xeon10" ? " cluster=" + cluster : "";
    std::snprintf(buf, sizeof(buf),
                  "#%llu %s %llux%llu reducers=%u threads=%u seed=%llu "
                  "sampling=%.3g%s%s%s mode=%s attempts=%u plan[%s]",
                  static_cast<unsigned long long>(index), workload.c_str(),
                  static_cast<unsigned long long>(blocks),
                  static_cast<unsigned long long>(items), reducers, threads,
                  static_cast<unsigned long long>(job_seed), sampling,
                  has_target ? (" target=" + formatDouble(target)).c_str()
                             : "",
                  jobs_dim.c_str(), fleet_dim.c_str(), ft::toString(mode),
                  max_attempts, plan.summary().c_str());
    return buf;
}

std::string
Scenario::approxrunCommand() const
{
    std::string cmd = "approxrun " + workload;
    cmd += " --blocks " + std::to_string(blocks);
    cmd += " --items " + std::to_string(items);
    cmd += " --seed " + std::to_string(job_seed);
    cmd += " --reducers " + std::to_string(reducers);
    cmd += " --threads " + std::to_string(threads);
    if (cluster != "xeon10") {
        cmd += " --cluster " + cluster;
    }
    if (has_target) {
        cmd += " --target " + formatDouble(target);
    } else if (sampling < 1.0) {
        cmd += " --sampling " + formatDouble(sampling);
    }
    cmd += " --failure-mode ";
    cmd += ft::toString(mode);
    cmd += " --max-attempts " + std::to_string(max_attempts);
    cmd += " --checkpoint-interval " + std::to_string(checkpoint_interval);
    cmd += " --heartbeat-interval " + formatDouble(heartbeat_ms);
    cmd += " --task-timeout " + formatDouble(timeout_ms);
    std::string spec = plan.spec();
    if (!spec.empty()) {
        cmd += " --fault-plan \"" + spec + "\"";
    }
    if (plan.hasDriverCrash()) {
        // dcrash= kills abort the process; approxrun requires a journal
        // to resume from, so the reproducer must carry one.
        cmd += " --journal chaos.axj";
    }
    return cmd;
}

const std::vector<std::string>&
ScenarioGenerator::workloadNames()
{
    // Count/sum aggregations only: their per-key cluster statistics can
    // be recomputed analytically by replaying the mapper, which is what
    // the oracle's absorb-identity check needs. One workload per dataset
    // family keeps scenario runtime bounded; "skewstorm" is the
    // adversarial hot-key / Zipf-shifted-block-size variant of
    // projectpop.
    static const std::vector<std::string> kNames = {
        "wikilength", "projectpop", "pagetraffic", "totalsize",
        "skewstorm"};
    return kNames;
}

Scenario
ScenarioGenerator::generate(uint64_t index) const
{
    // All draws come from a child stream of (family seed, index) in a
    // fixed order, so generate(i) is a pure function of its inputs.
    Rng rng = Rng(family_seed_).derive(0xC4A05 + index);

    Scenario s;
    s.family_seed = family_seed_;
    s.index = index;
    s.workload =
        workloadNames()[rng.uniformInt(workloadNames().size())];
    s.blocks = 16 + rng.uniformInt(49);   // 16..64 map tasks
    s.items = 8 + rng.uniformInt(25);     // 8..32 items per block
    static const uint32_t kReducers[] = {1, 2, 4};
    s.reducers = kReducers[rng.uniformInt(3)];
    s.threads = static_cast<uint32_t>(2 + rng.uniformInt(7));  // 2..8
    s.job_seed = 1 + rng.uniformInt(1000000000);

    double approx_kind = rng.uniform();
    if (approx_kind < 0.45) {
        s.sampling = 1.0;
    } else if (approx_kind < 0.80) {
        s.sampling = 0.3 + 0.6 * rng.uniform();
    } else {
        s.has_target = true;
        s.target = 0.02 + 0.08 * rng.uniform();
    }

    static const ft::FailureMode kModes[] = {ft::FailureMode::kRetry,
                                             ft::FailureMode::kAbsorb,
                                             ft::FailureMode::kAuto};
    s.mode = kModes[rng.uniformInt(3)];
    s.max_attempts = static_cast<uint32_t>(2 + rng.uniformInt(7));
    static const uint64_t kCheckpoints[] = {0, 3, 8, 16};
    s.checkpoint_interval = kCheckpoints[rng.uniformInt(4)];
    static const double kHeartbeats[] = {250.0, 500.0, 1000.0};
    s.heartbeat_ms = kHeartbeats[rng.uniformInt(3)];
    static const double kTimeouts[] = {0.0, 2000.0, 8000.0};
    s.timeout_ms = kTimeouts[rng.uniformInt(3)];

    ft::FaultPlan& plan = s.plan;
    if (rng.bernoulli(0.5)) {
        plan.task_crash_prob = 0.6 * rng.uniform();
    }
    if (rng.bernoulli(0.4)) {
        plan.reduce_crash_prob = 0.8 * rng.uniform();
    }
    if (rng.bernoulli(0.4)) {
        plan.chunk_corrupt_prob = 0.5 * rng.uniform();
    }
    if (rng.bernoulli(0.35)) {
        plan.bad_record_prob = 0.3 * rng.uniform();
    }
    if (rng.bernoulli(0.35)) {
        plan.straggler_prob = 0.3 * rng.uniform();
        plan.straggler_factor = 2.0 + 6.0 * rng.uniform();
        plan.straggler_sigma = rng.bernoulli(0.5) ? 0.4 * rng.uniform()
                                                  : 0.0;
    }
    uint64_t server_crashes = rng.uniformInt(3);
    for (uint64_t c = 0; c < server_crashes; ++c) {
        ft::FaultPlan::ServerCrash crash;
        crash.server = static_cast<uint32_t>(rng.uniformInt(10));
        crash.at = 200.0 * rng.uniform();
        crash.down_for =
            rng.bernoulli(0.5) ? 10.0 + 100.0 * rng.uniform() : -1.0;
        plan.server_crashes.push_back(crash);
    }
    plan.seed = rng.uniformInt(100000);

    // A slice of guaranteed retry-exhaustion scenarios: every attempt
    // crashes and attempts run out, which must end in the exit-3
    // contract (JobFailedError), never a hang or a silent zero exit.
    if (rng.bernoulli(0.06)) {
        s.mode = ft::FailureMode::kRetry;
        s.plan.task_crash_prob = 1.0;
        s.max_attempts = 2;
        s.has_target = false;
        s.sampling = 1.0;
    }

    // Multi-job slice: 2-4 concurrent jobs through the JobService
    // (drawn last so the single-job field prefix above is unchanged for
    // a given (family seed, index)). Server crashes are stripped — a
    // whole-server crash is not attributable to one job when several
    // tenants hold map slots on it.
    if (rng.bernoulli(0.12)) {
        s.concurrent_jobs = static_cast<uint32_t>(2 + rng.uniformInt(3));
        s.plan.server_crashes.clear();
    }

    // Elastic/heterogeneous slice (drawn last, same reason as above).
    // Every fleet has >= 10 servers so the legacy `server=` ids drawn
    // earlier (0..9) always exist.
    if (rng.bernoulli(0.30)) {
        static const char* kFleets[] = {"10xeon+20atom", "6xeon+6atom",
                                        "atom60", "12atom", "16xeon"};
        s.cluster = kFleets[rng.uniformInt(5)];
    }
    // Fleet-change events only make sense standalone: the JobService
    // rejects fleet-changing fault plans (a revocation or resize cannot
    // be attributed to one tenant).
    if (s.concurrent_jobs == 1) {
        if (rng.bernoulli(0.25)) {
            ft::FaultPlan::Revocation storm;
            storm.count = static_cast<uint32_t>(1 + rng.uniformInt(5));
            storm.at = 200.0 * rng.uniform();
            storm.down_for =
                rng.bernoulli(0.5) ? 10.0 + 100.0 * rng.uniform() : -1.0;
            plan.revocations.push_back(storm);
        }
        if (rng.bernoulli(0.2)) {
            ft::FaultPlan::ScaleOut add;
            add.count = static_cast<uint32_t>(1 + rng.uniformInt(6));
            add.server_class = rng.bernoulli(0.5) ? "atom" : "xeon";
            add.at = 150.0 * rng.uniform();
            plan.scale_outs.push_back(add);
        }
        if (rng.bernoulli(0.2)) {
            ft::FaultPlan::Drain drain;
            drain.count = static_cast<uint32_t>(1 + rng.uniformInt(4));
            drain.at = 150.0 * rng.uniform();
            plan.drains.push_back(drain);
        }
        // Driver-crash dimension (drawn last, same stability reason):
        // one or two dcrash= kills early in the job. The oracle wraps
        // such scenarios in the journal record/resume loop and checks
        // the resumed run against the uninterrupted one. Kill times
        // past the job's end simply never fire — the equivalence then
        // holds trivially. Single-job only: the JobService rejects
        // dcrash plans (a driver kill is not attributable to one
        // tenant).
        if (rng.bernoulli(0.25)) {
            uint64_t kills = 1 + rng.uniformInt(2);
            for (uint64_t k = 0; k < kills; ++k) {
                plan.driver_crashes.push_back(0.5 + 15.0 * rng.uniform());
            }
        }
    }
    return s;
}

}  // namespace approxhadoop::chaos
