#ifndef APPROXHADOOP_CHAOS_SHRINK_H_
#define APPROXHADOOP_CHAOS_SHRINK_H_

#include <functional>

#include "chaos/scenario.h"

namespace approxhadoop::chaos {

/** Outcome of shrinking one failing scenario. */
struct ShrinkResult
{
    /** The smallest scenario found that still violates an invariant. */
    Scenario scenario;
    /** Oracle evaluations spent (each is a full scenario check). */
    int evaluations = 0;
};

/**
 * Greedily minimizes a violating scenario: repeatedly tries to zero a
 * fault-plan key, drop scheduled server or driver crashes, remove the
 * approximation target, restore full sampling, reduce reducers/threads,
 * shrink the input, and halve the remaining fault probabilities —
 * keeping each simplification only when @p still_fails confirms the
 * violation survives it. Runs to a fixpoint or until @p max_evaluations
 * oracle calls are spent, whichever comes first. Deterministic: the
 * same failing scenario always shrinks to the same reproducer.
 *
 * @param still_fails predicate running the oracle on a candidate; true
 *                    when the candidate still violates an invariant
 */
ShrinkResult
shrinkScenario(const Scenario& failing,
               const std::function<bool(const Scenario&)>& still_fails,
               int max_evaluations = 80);

}  // namespace approxhadoop::chaos

#endif  // APPROXHADOOP_CHAOS_SHRINK_H_
