#include "chaos/shrink.h"

#include <algorithm>

namespace approxhadoop::chaos {

namespace {

/** One candidate simplification; returns false when it would not change
 *  the scenario (so the oracle run is skipped). */
using Transform = bool (*)(Scenario&);

bool
singleJob(Scenario& s)
{
    if (s.concurrent_jobs <= 1) {
        return false;
    }
    s.concurrent_jobs = 1;
    return true;
}

bool
fewerJobs(Scenario& s)
{
    if (s.concurrent_jobs <= 2) {
        return false;
    }
    --s.concurrent_jobs;
    return true;
}

bool
noDriverCrash(Scenario& s)
{
    if (s.plan.driver_crashes.empty()) {
        return false;
    }
    s.plan.driver_crashes.clear();
    return true;
}

bool
dropOneDriverCrash(Scenario& s)
{
    if (s.plan.driver_crashes.size() < 2) {
        return false;
    }
    s.plan.driver_crashes.pop_back();
    return true;
}

bool
noStorms(Scenario& s)
{
    if (s.plan.revocations.empty()) {
        return false;
    }
    s.plan.revocations.clear();
    return true;
}

bool
noResize(Scenario& s)
{
    if (s.plan.scale_outs.empty() && s.plan.drains.empty()) {
        return false;
    }
    s.plan.scale_outs.clear();
    s.plan.drains.clear();
    return true;
}

bool
homogeneousFleet(Scenario& s)
{
    if (s.cluster == "xeon10") {
        return false;
    }
    s.cluster = "xeon10";
    return true;
}

bool
zeroCrash(Scenario& s)
{
    if (s.plan.task_crash_prob == 0.0) {
        return false;
    }
    s.plan.task_crash_prob = 0.0;
    return true;
}

bool
zeroReduceCrash(Scenario& s)
{
    if (s.plan.reduce_crash_prob == 0.0) {
        return false;
    }
    s.plan.reduce_crash_prob = 0.0;
    return true;
}

bool
zeroCorrupt(Scenario& s)
{
    if (s.plan.chunk_corrupt_prob == 0.0) {
        return false;
    }
    s.plan.chunk_corrupt_prob = 0.0;
    return true;
}

bool
zeroBadRecords(Scenario& s)
{
    if (s.plan.bad_record_prob == 0.0) {
        return false;
    }
    s.plan.bad_record_prob = 0.0;
    return true;
}

bool
zeroStragglers(Scenario& s)
{
    if (s.plan.straggler_prob == 0.0) {
        return false;
    }
    s.plan.straggler_prob = 0.0;
    s.plan.straggler_factor = 4.0;
    s.plan.straggler_sigma = 0.0;
    return true;
}

bool
clearServerCrashes(Scenario& s)
{
    if (s.plan.server_crashes.empty()) {
        return false;
    }
    s.plan.server_crashes.clear();
    return true;
}

bool
dropOneServerCrash(Scenario& s)
{
    if (s.plan.server_crashes.size() < 2) {
        return false;
    }
    s.plan.server_crashes.pop_back();
    return true;
}

bool
dropTarget(Scenario& s)
{
    if (!s.has_target) {
        return false;
    }
    s.has_target = false;
    s.target = 0.0;
    s.sampling = 1.0;
    return true;
}

bool
fullSampling(Scenario& s)
{
    if (s.has_target || s.sampling >= 1.0) {
        return false;
    }
    s.sampling = 1.0;
    return true;
}

bool
oneReducer(Scenario& s)
{
    if (s.reducers == 1) {
        return false;
    }
    s.reducers = 1;
    return true;
}

bool
twoThreads(Scenario& s)
{
    if (s.threads <= 2) {
        return false;
    }
    s.threads = 2;
    return true;
}

bool
halveBlocks(Scenario& s)
{
    if (s.blocks <= 4) {
        return false;
    }
    s.blocks = std::max<uint64_t>(4, s.blocks / 2);
    return true;
}

bool
halveItems(Scenario& s)
{
    if (s.items <= 4) {
        return false;
    }
    s.items = std::max<uint64_t>(4, s.items / 2);
    return true;
}

bool
halveProbabilities(Scenario& s)
{
    bool changed = false;
    for (double* p :
         {&s.plan.task_crash_prob, &s.plan.reduce_crash_prob,
          &s.plan.chunk_corrupt_prob, &s.plan.bad_record_prob,
          &s.plan.straggler_prob}) {
        if (*p > 0.02) {
            *p /= 2.0;
            changed = true;
        }
    }
    return changed;
}

}  // namespace

ShrinkResult
shrinkScenario(const Scenario& failing,
               const std::function<bool(const Scenario&)>& still_fails,
               int max_evaluations)
{
    // Ordered roughly by how much each simplification removes: elastic
    // dimensions (no storms, no resize, homogeneous fleet) and whole
    // fault keys first, then scale, then probability halving.
    static const Transform kTransforms[] = {
        singleJob,          fewerJobs,          noDriverCrash,
        dropOneDriverCrash, noStorms,           noResize,
        homogeneousFleet,   zeroCrash,          zeroReduceCrash,
        zeroCorrupt,        zeroBadRecords,     zeroStragglers,
        clearServerCrashes, dropOneServerCrash, dropTarget,
        fullSampling,       oneReducer,         twoThreads,
        halveBlocks,        halveItems,         halveProbabilities,
    };

    ShrinkResult out;
    out.scenario = failing;
    bool progress = true;
    while (progress && out.evaluations < max_evaluations) {
        progress = false;
        for (Transform transform : kTransforms) {
            if (out.evaluations >= max_evaluations) {
                break;
            }
            Scenario candidate = out.scenario;
            if (!transform(candidate)) {
                continue;
            }
            ++out.evaluations;
            if (still_fails(candidate)) {
                out.scenario = candidate;
                progress = true;
            }
        }
    }
    return out;
}

}  // namespace approxhadoop::chaos
