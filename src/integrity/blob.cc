#include "integrity/blob.h"

#include <cstring>
#include <stdexcept>

namespace approxhadoop::integrity {

void
BlobWriter::putU64(uint64_t v)
{
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<char>(v >> (8 * i));
    }
    buf_.append(bytes, sizeof(bytes));
}

void
BlobWriter::putDouble(double v)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
BlobWriter::putString(const std::string& s)
{
    putU64(s.size());
    buf_.append(s);
}

void
BlobReader::need(size_t bytes) const
{
    if (buf_.size() - pos_ < bytes) {
        throw std::runtime_error("checkpoint blob: truncated");
    }
}

uint64_t
BlobReader::getU64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) |
            static_cast<unsigned char>(buf_[pos_ + static_cast<size_t>(i)]);
    }
    pos_ += 8;
    return v;
}

double
BlobReader::getDouble()
{
    uint64_t bits = getU64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
BlobReader::getString()
{
    uint64_t len = getU64();
    need(len);
    std::string s = buf_.substr(pos_, len);
    pos_ += len;
    return s;
}

void
BlobReader::expectEnd() const
{
    if (!atEnd()) {
        throw std::runtime_error("checkpoint blob: trailing bytes");
    }
}

}  // namespace approxhadoop::integrity
