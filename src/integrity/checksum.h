#ifndef APPROXHADOOP_INTEGRITY_CHECKSUM_H_
#define APPROXHADOOP_INTEGRITY_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace approxhadoop::integrity {

/**
 * Streaming 64-bit checksum (XXH64 algorithm).
 *
 * Map attempts stamp every shuffle chunk with a digest over its
 * serialized records and sampling metadata; the reduce side recomputes
 * the digest at delivery and treats a mismatch as a corrupt fetch.
 * The hash is seeded and byte-order independent, so digests are stable
 * across platforms and across reruns — a requirement for the
 * deterministic fault replay the rest of the framework guarantees.
 */
class Hasher64
{
  public:
    explicit Hasher64(uint64_t seed = 0);

    /** Feeds raw bytes. */
    void update(const void* data, size_t len);

    /** Feeds one u64 as 8 little-endian bytes. */
    void update(uint64_t v);

    /** Feeds one double as its IEEE-754 bit pattern (bit-exact). */
    void update(double v);

    /** Feeds a length-prefixed string (unambiguous concatenation). */
    void update(const std::string& s);

    /** Same digest as the string overload, without materializing one. */
    void update(std::string_view s);

    /** Digest of everything fed so far; does not reset the state. */
    uint64_t digest() const;

  private:
    uint64_t v1_;
    uint64_t v2_;
    uint64_t v3_;
    uint64_t v4_;
    uint64_t total_len_ = 0;
    uint64_t seed_;
    unsigned char buf_[32];
    size_t buf_len_ = 0;
};

/** One-shot convenience wrapper over Hasher64. */
uint64_t hash64(const void* data, size_t len, uint64_t seed = 0);

}  // namespace approxhadoop::integrity

#endif  // APPROXHADOOP_INTEGRITY_CHECKSUM_H_
