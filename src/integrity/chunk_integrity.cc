#include "integrity/chunk_integrity.h"

#include <cstring>

#include "integrity/checksum.h"

namespace approxhadoop::integrity {

namespace {

/** Fixed hash seed: chunk digests are stable across jobs and replays. */
constexpr uint64_t kChunkHashSeed = 0x5CA1AB1E0DDBA11ULL;

}  // namespace

uint64_t
chunkChecksum(const mr::MapOutputChunk& chunk)
{
    Hasher64 h(kChunkHashSeed);
    h.update(chunk.map_task);
    h.update(chunk.items_total);
    h.update(chunk.items_processed);
    h.update(chunk.records_skipped);
    h.update(static_cast<uint64_t>(chunk.records.size()));
    for (const mr::KeyValue& kv : chunk.records) {
        h.update(kv.key);
        h.update(kv.value);
        h.update(kv.value2);
        h.update(kv.value3);
        h.update(kv.value4);
    }
    return h.digest();
}

void
stampChunk(mr::MapOutputChunk& chunk)
{
    chunk.checksum = chunkChecksum(chunk);
}

bool
verifyChunk(const mr::MapOutputChunk& chunk)
{
    return chunk.checksum == chunkChecksum(chunk);
}

void
corruptChunk(mr::MapOutputChunk& chunk, Rng& rng)
{
    if (chunk.records.empty()) {
        // Nothing in the payload to damage; corrupt the sampling
        // metadata instead (still checksum-covered).
        chunk.items_processed ^= 1ULL << rng.uniformInt(16);
        return;
    }
    size_t idx = static_cast<size_t>(rng.uniformInt(chunk.records.size()));
    mr::KeyValue& kv = chunk.records[idx];
    uint64_t bits = 0;
    std::memcpy(&bits, &kv.value, sizeof(bits));
    bits ^= 1ULL << rng.uniformInt(64);
    std::memcpy(&kv.value, &bits, sizeof(bits));
}

}  // namespace approxhadoop::integrity
