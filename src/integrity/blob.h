#ifndef APPROXHADOOP_INTEGRITY_BLOB_H_
#define APPROXHADOOP_INTEGRITY_BLOB_H_

#include <cstdint>
#include <string>

namespace approxhadoop::integrity {

/**
 * Minimal binary serializer for reducer checkpoints.
 *
 * Checkpoint blobs must restore reducer state *bit-identically* —
 * recovered runs are pinned to match fault-free runs exactly — so
 * doubles are encoded as raw IEEE-754 bit patterns, never via text
 * round-trips. All integers are fixed-width little-endian; strings are
 * length-prefixed. The format needs no schema evolution: a checkpoint
 * never outlives the job that wrote it.
 */
class BlobWriter
{
  public:
    void putU64(uint64_t v);
    /** Bit-exact double encoding. */
    void putDouble(double v);
    void putString(const std::string& s);
    void putBool(bool v) { putU64(v ? 1 : 0); }

    const std::string& str() const { return buf_; }
    std::string release() { return std::move(buf_); }

  private:
    std::string buf_;
};

/**
 * Reader for BlobWriter output.
 *
 * @throws std::runtime_error on truncated or overlong input — a
 *         checkpoint that fails to parse is treated as corrupt.
 */
class BlobReader
{
  public:
    explicit BlobReader(const std::string& buf) : buf_(buf) {}

    uint64_t getU64();
    double getDouble();
    std::string getString();
    bool getBool() { return getU64() != 0; }

    bool atEnd() const { return pos_ == buf_.size(); }

    /** @throws std::runtime_error unless the whole blob was consumed. */
    void expectEnd() const;

  private:
    void need(size_t bytes) const;

    const std::string& buf_;
    size_t pos_ = 0;
};

}  // namespace approxhadoop::integrity

#endif  // APPROXHADOOP_INTEGRITY_BLOB_H_
