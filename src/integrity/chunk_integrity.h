#ifndef APPROXHADOOP_INTEGRITY_CHUNK_INTEGRITY_H_
#define APPROXHADOOP_INTEGRITY_CHUNK_INTEGRITY_H_

#include <cstdint>

#include "common/random.h"
#include "mapreduce/reducer.h"

namespace approxhadoop::integrity {

/**
 * Digest over a shuffle chunk's serialized records and sampling
 * metadata (map task id, M_i, m_i, skipped-record count). The chunk's
 * own `checksum` field is excluded, so stamping is idempotent.
 */
uint64_t chunkChecksum(const mr::MapOutputChunk& chunk);

/** Computes and stores the chunk's checksum. */
void stampChunk(mr::MapOutputChunk& chunk);

/** True when the stored checksum matches the recomputed digest. */
bool verifyChunk(const mr::MapOutputChunk& chunk);

/**
 * Simulates in-flight corruption of one fetched chunk copy: flips a
 * single bit of a record value (or, for empty chunks, perturbs the
 * metadata) chosen by @p rng. The damage is always visible to
 * verifyChunk() because the checksum covers every mutated field.
 */
void corruptChunk(mr::MapOutputChunk& chunk, Rng& rng);

}  // namespace approxhadoop::integrity

#endif  // APPROXHADOOP_INTEGRITY_CHUNK_INTEGRITY_H_
