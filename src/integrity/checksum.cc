#include "integrity/checksum.h"

#include <cstring>

namespace approxhadoop::integrity {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t
rotl(uint64_t v, int bits)
{
    return (v << bits) | (v >> (64 - bits));
}

/** Little-endian loads so digests match across byte orders. */
inline uint64_t
readLE64(const unsigned char* p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | p[i];
    }
    return v;
}

inline uint32_t
readLE32(const unsigned char* p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t
round1(uint64_t acc, uint64_t input)
{
    acc += input * kPrime2;
    acc = rotl(acc, 31);
    acc *= kPrime1;
    return acc;
}

inline uint64_t
mergeRound(uint64_t acc, uint64_t val)
{
    acc ^= round1(0, val);
    acc = acc * kPrime1 + kPrime4;
    return acc;
}

}  // namespace

Hasher64::Hasher64(uint64_t seed)
    : v1_(seed + kPrime1 + kPrime2),
      v2_(seed + kPrime2),
      v3_(seed),
      v4_(seed - kPrime1),
      seed_(seed)
{
}

void
Hasher64::update(const void* data, size_t len)
{
    const unsigned char* p = static_cast<const unsigned char*>(data);
    total_len_ += len;

    if (buf_len_ + len < 32) {
        std::memcpy(buf_ + buf_len_, p, len);
        buf_len_ += len;
        return;
    }

    if (buf_len_ > 0) {
        size_t fill = 32 - buf_len_;
        std::memcpy(buf_ + buf_len_, p, fill);
        v1_ = round1(v1_, readLE64(buf_));
        v2_ = round1(v2_, readLE64(buf_ + 8));
        v3_ = round1(v3_, readLE64(buf_ + 16));
        v4_ = round1(v4_, readLE64(buf_ + 24));
        p += fill;
        len -= fill;
        buf_len_ = 0;
    }

    while (len >= 32) {
        v1_ = round1(v1_, readLE64(p));
        v2_ = round1(v2_, readLE64(p + 8));
        v3_ = round1(v3_, readLE64(p + 16));
        v4_ = round1(v4_, readLE64(p + 24));
        p += 32;
        len -= 32;
    }

    if (len > 0) {
        std::memcpy(buf_, p, len);
        buf_len_ = len;
    }
}

void
Hasher64::update(uint64_t v)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    update(bytes, sizeof(bytes));
}

void
Hasher64::update(double v)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    update(bits);
}

void
Hasher64::update(const std::string& s)
{
    update(std::string_view(s));
}

void
Hasher64::update(std::string_view s)
{
    update(static_cast<uint64_t>(s.size()));
    update(s.data(), s.size());
}

uint64_t
Hasher64::digest() const
{
    uint64_t h;
    if (total_len_ >= 32) {
        h = rotl(v1_, 1) + rotl(v2_, 7) + rotl(v3_, 12) + rotl(v4_, 18);
        h = mergeRound(h, v1_);
        h = mergeRound(h, v2_);
        h = mergeRound(h, v3_);
        h = mergeRound(h, v4_);
    } else {
        h = seed_ + kPrime5;
    }
    h += total_len_;

    const unsigned char* p = buf_;
    size_t len = buf_len_;
    while (len >= 8) {
        h ^= round1(0, readLE64(p));
        h = rotl(h, 27) * kPrime1 + kPrime4;
        p += 8;
        len -= 8;
    }
    if (len >= 4) {
        h ^= static_cast<uint64_t>(readLE32(p)) * kPrime1;
        h = rotl(h, 23) * kPrime2 + kPrime3;
        p += 4;
        len -= 4;
    }
    while (len > 0) {
        h ^= *p * kPrime5;
        h = rotl(h, 11) * kPrime1;
        ++p;
        --len;
    }

    h ^= h >> 33;
    h *= kPrime2;
    h ^= h >> 29;
    h *= kPrime3;
    h ^= h >> 32;
    return h;
}

uint64_t
hash64(const void* data, size_t len, uint64_t seed)
{
    Hasher64 h(seed);
    h.update(data, len);
    return h.digest();
}

}  // namespace approxhadoop::integrity
