#ifndef APPROXHADOOP_COMMON_LOGGING_H_
#define APPROXHADOOP_COMMON_LOGGING_H_

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace approxhadoop {

/** Severity levels for the framework logger. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/**
 * Minimal leveled logger used throughout the framework.
 *
 * The logger writes to stderr and is thread-safe: the simulated event
 * loop is single-threaded, but map-side UDF work runs on thread-pool
 * workers (JobConfig::num_exec_threads) that may log concurrently. Each
 * line is emitted atomically under a mutex and the level is atomic, so
 * concurrent lines interleave whole, never mid-line. Benchmarks silence
 * the logger by raising the level to kError.
 */
class Logger
{
  public:
    /** Returns the process-wide logger instance. */
    static Logger& instance();

    /** Sets the minimum severity that will be emitted. */
    void setLevel(LogLevel level)
    {
        level_.store(level, std::memory_order_relaxed);
    }

    /** Returns the current minimum severity. */
    LogLevel level() const { return level_.load(std::memory_order_relaxed); }

    /**
     * Emits one log line if @p level passes the configured threshold.
     * The line is written with a single stdio call under emit_mutex_,
     * so lines from concurrent threads never interleave.
     *
     * @param level severity of the message
     * @param tag   short subsystem tag (e.g., "jobtracker")
     * @param msg   preformatted message body
     */
    void log(LogLevel level, const std::string& tag, const std::string& msg);

  private:
    Logger() = default;

    std::atomic<LogLevel> level_{LogLevel::kWarn};
    std::mutex emit_mutex_;
};

/** Stream-style helper: LOG_STREAM(kInfo, "tag") << "message"; */
class LogStream
{
  public:
    LogStream(LogLevel level, std::string tag)
        : level_(level), tag_(std::move(tag)) {}

    ~LogStream() { Logger::instance().log(level_, tag_, out_.str()); }

    template <typename T>
    LogStream&
    operator<<(const T& value)
    {
        out_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::string tag_;
    std::ostringstream out_;
};

}  // namespace approxhadoop

#define AH_LOG(level, tag) ::approxhadoop::LogStream((level), (tag))
#define AH_DEBUG(tag) AH_LOG(::approxhadoop::LogLevel::kDebug, (tag))
#define AH_INFO(tag) AH_LOG(::approxhadoop::LogLevel::kInfo, (tag))
#define AH_WARN(tag) AH_LOG(::approxhadoop::LogLevel::kWarn, (tag))
#define AH_ERROR(tag) AH_LOG(::approxhadoop::LogLevel::kError, (tag))

#endif  // APPROXHADOOP_COMMON_LOGGING_H_
