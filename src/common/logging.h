#ifndef APPROXHADOOP_COMMON_LOGGING_H_
#define APPROXHADOOP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace approxhadoop {

/** Severity levels for the framework logger. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/**
 * Minimal leveled logger used throughout the framework.
 *
 * The logger writes to stderr and is intentionally not thread-safe: the
 * simulator is single-threaded by design (see src/sim/event_queue.h).
 * Benchmarks silence it by raising the level to kError.
 */
class Logger
{
  public:
    /** Returns the process-wide logger instance. */
    static Logger& instance();

    /** Sets the minimum severity that will be emitted. */
    void setLevel(LogLevel level) { level_ = level; }

    /** Returns the current minimum severity. */
    LogLevel level() const { return level_; }

    /**
     * Emits one log line if @p level passes the configured threshold.
     *
     * @param level severity of the message
     * @param tag   short subsystem tag (e.g., "jobtracker")
     * @param msg   preformatted message body
     */
    void log(LogLevel level, const std::string& tag, const std::string& msg);

  private:
    Logger() = default;

    LogLevel level_ = LogLevel::kWarn;
};

/** Stream-style helper: LOG_STREAM(kInfo, "tag") << "message"; */
class LogStream
{
  public:
    LogStream(LogLevel level, std::string tag)
        : level_(level), tag_(std::move(tag)) {}

    ~LogStream() { Logger::instance().log(level_, tag_, out_.str()); }

    template <typename T>
    LogStream&
    operator<<(const T& value)
    {
        out_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::string tag_;
    std::ostringstream out_;
};

}  // namespace approxhadoop

#define AH_LOG(level, tag) ::approxhadoop::LogStream((level), (tag))
#define AH_DEBUG(tag) AH_LOG(::approxhadoop::LogLevel::kDebug, (tag))
#define AH_INFO(tag) AH_LOG(::approxhadoop::LogLevel::kInfo, (tag))
#define AH_WARN(tag) AH_LOG(::approxhadoop::LogLevel::kWarn, (tag))
#define AH_ERROR(tag) AH_LOG(::approxhadoop::LogLevel::kError, (tag))

#endif  // APPROXHADOOP_COMMON_LOGGING_H_
