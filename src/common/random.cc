#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace approxhadoop {

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) : engine_(splitmix64(seed)) {}

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    assert(n > 0);
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return uniform() < p;
}

double
Rng::normal(double mean, double stddev)
{
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double
Rng::exponential(double rate)
{
    return std::exponential_distribution<double>(rate)(engine_);
}

Rng
Rng::derive(uint64_t stream)
{
    uint64_t base = engine_();
    return Rng(splitmix64(base ^ splitmix64(stream)));
}

std::vector<uint64_t>
Rng::sampleWithoutReplacement(uint64_t n, uint64_t k)
{
    assert(k <= n);
    // Floyd's algorithm: k iterations, each adding exactly one new element.
    std::unordered_set<uint64_t> chosen;
    std::vector<uint64_t> result;
    result.reserve(k);
    for (uint64_t j = n - k; j < n; ++j) {
        uint64_t t = uniformInt(j + 1);
        if (chosen.count(t)) {
            t = j;
        }
        chosen.insert(t);
        result.push_back(t);
    }
    return result;
}

}  // namespace approxhadoop
