#include "common/zipf.h"

#include <cassert>
#include <cmath>

namespace approxhadoop {

ZipfDistribution::ZipfDistribution(uint64_t num_elements, double exponent)
    : num_elements_(num_elements), exponent_(exponent)
{
    assert(num_elements >= 1);
    assert(exponent > 0.0);
    h_x1_ = h(1.5) - 1.0;
    h_num_elements_ = h(static_cast<double>(num_elements) + 0.5);
    s_ = 2.0 - hInverse(h(2.5) - std::pow(2.0, -exponent));
    normalizer_ = 0.0;
    // The exact normalizer is only needed by pmf(); cap the summation so
    // constructing huge distributions stays cheap. Beyond the cap we use the
    // integral tail, which is accurate to ~1e-9 for the sizes we test.
    const uint64_t kExactCap = 10'000'000;
    uint64_t exact = std::min(num_elements, kExactCap);
    for (uint64_t k = 1; k <= exact; ++k) {
        normalizer_ += std::pow(static_cast<double>(k), -exponent);
    }
    if (num_elements > exact) {
        // Integral approximation of sum_{k=exact+1}^{N} k^-s.
        if (exponent == 1.0) {
            normalizer_ += std::log(static_cast<double>(num_elements) /
                                    static_cast<double>(exact));
        } else {
            double a = std::pow(static_cast<double>(exact) + 0.5,
                                1.0 - exponent);
            double b = std::pow(static_cast<double>(num_elements) + 0.5,
                                1.0 - exponent);
            normalizer_ += (b - a) / (1.0 - exponent);
        }
    }
}

double
ZipfDistribution::h(double x) const
{
    if (exponent_ == 1.0) {
        return std::log(x);
    }
    return std::pow(x, 1.0 - exponent_) / (1.0 - exponent_);
}

double
ZipfDistribution::hInverse(double x) const
{
    if (exponent_ == 1.0) {
        return std::exp(x);
    }
    return std::pow((1.0 - exponent_) * x, 1.0 / (1.0 - exponent_));
}

uint64_t
ZipfDistribution::sample(Rng& rng) const
{
    if (num_elements_ == 1) {
        return 0;
    }
    while (true) {
        double u = h_num_elements_ +
                   rng.uniform() * (h_x1_ - h_num_elements_);
        double x = hInverse(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        if (k < 1) {
            k = 1;
        } else if (k > num_elements_) {
            k = num_elements_;
        }
        double kd = static_cast<double>(k);
        if (kd - x <= s_ || u >= h(kd + 0.5) - std::pow(kd, -exponent_)) {
            return k - 1;
        }
    }
}

double
ZipfDistribution::pmf(uint64_t r) const
{
    assert(r < num_elements_);
    return std::pow(static_cast<double>(r + 1), -exponent_) / normalizer_;
}

}  // namespace approxhadoop
