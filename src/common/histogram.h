#ifndef APPROXHADOOP_COMMON_HISTOGRAM_H_
#define APPROXHADOOP_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace approxhadoop {

/**
 * Fixed-width binning helper.
 *
 * WikiLength and several benchmarks bucket values (e.g., article sizes)
 * into bins and count occurrences; this class centralizes the bin math so
 * the precise and approximate code paths agree on bin labels.
 */
class Histogram
{
  public:
    /** @param bin_width width of each bin (must be > 0) */
    explicit Histogram(double bin_width);

    /** Adds one observation. */
    void add(double value);

    /** Returns the bin index for @p value. */
    int64_t binIndex(double value) const;

    /** Returns the inclusive lower edge of bin @p index. */
    double binLowerEdge(int64_t index) const;

    /** Returns the count in bin @p index (0 if empty). */
    uint64_t count(int64_t index) const;

    /** Returns all non-empty bins sorted by index. */
    const std::map<int64_t, uint64_t>& bins() const { return bins_; }

    /** Total number of observations. */
    uint64_t total() const { return total_; }

  private:
    double bin_width_;
    uint64_t total_ = 0;
    std::map<int64_t, uint64_t> bins_;
};

}  // namespace approxhadoop

#endif  // APPROXHADOOP_COMMON_HISTOGRAM_H_
