#include "common/histogram.h"

#include <cassert>
#include <cmath>

namespace approxhadoop {

Histogram::Histogram(double bin_width) : bin_width_(bin_width)
{
    assert(bin_width > 0.0);
}

void
Histogram::add(double value)
{
    ++bins_[binIndex(value)];
    ++total_;
}

int64_t
Histogram::binIndex(double value) const
{
    return static_cast<int64_t>(std::floor(value / bin_width_));
}

double
Histogram::binLowerEdge(int64_t index) const
{
    return static_cast<double>(index) * bin_width_;
}

uint64_t
Histogram::count(int64_t index) const
{
    auto it = bins_.find(index);
    return it == bins_.end() ? 0 : it->second;
}

}  // namespace approxhadoop
