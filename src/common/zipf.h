#ifndef APPROXHADOOP_COMMON_ZIPF_H_
#define APPROXHADOOP_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace approxhadoop {

/**
 * Zipf(s, N) sampler over ranks {0, ..., N-1}.
 *
 * Rank r is drawn with probability proportional to 1 / (r+1)^s. Wikipedia
 * page popularity, project popularity, and word frequencies are all
 * heavy-tailed, so this is the workhorse of the synthetic workload
 * generators (see DESIGN.md section 2).
 *
 * Uses rejection-inversion (Hormann & Derflinger 1996), which is O(1) per
 * sample and supports N in the billions without precomputing a CDF.
 */
class ZipfDistribution
{
  public:
    /**
     * @param num_elements number of ranks N (must be >= 1)
     * @param exponent     skew s (must be > 0; s != 1 handled too)
     */
    ZipfDistribution(uint64_t num_elements, double exponent);

    /** Draws one rank in [0, N). */
    uint64_t sample(Rng& rng) const;

    /** Exact probability of rank @p r (for tests and analysis). */
    double pmf(uint64_t r) const;

    uint64_t numElements() const { return num_elements_; }
    double exponent() const { return exponent_; }

  private:
    /** H(x) = integral of x^-s, the rejection-inversion helper. */
    double h(double x) const;
    /** Inverse of h(). */
    double hInverse(double x) const;

    uint64_t num_elements_;
    double exponent_;
    double h_x1_;
    double h_num_elements_;
    double s_;
    double normalizer_;  // sum of 1/k^s for pmf()
};

}  // namespace approxhadoop

#endif  // APPROXHADOOP_COMMON_ZIPF_H_
