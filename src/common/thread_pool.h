#ifndef APPROXHADOOP_COMMON_THREAD_POOL_H_
#define APPROXHADOOP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace approxhadoop {

/**
 * Fixed-size worker pool executing submitted tasks FIFO.
 *
 * submit() returns a std::future for the task's result; exceptions thrown
 * by the task are captured and rethrown from future::get() on the caller's
 * thread, so error handling looks exactly like a synchronous call.
 *
 * The destructor drains the queue (every submitted task runs) and joins
 * the workers, so tasks may safely reference state that outlives the pool
 * object itself — e.g. the Job that owns it.
 *
 * The pool makes no fairness or ordering promise beyond FIFO dequeue;
 * callers that need deterministic *results* must make each task a pure
 * function of its inputs and impose ordering when consuming the futures
 * (see mr::Job, which merges map output in simulated-completion order).
 */
class ThreadPool
{
  public:
    /** Spawns @p num_threads workers (clamped to at least one). */
    explicit ThreadPool(unsigned num_threads);

    /** Runs all queued tasks to completion, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    unsigned numThreads() const { return static_cast<unsigned>(workers_.size()); }

    /** Tasks accepted but not yet finished executing. */
    uint64_t unfinishedTasks() const;

    /**
     * Enqueues @p fn for execution and returns a future for its result.
     * @p fn may be move-only (it is invoked exactly once).
     */
    template <typename F>
    std::future<std::invoke_result_t<F>>
    submit(F&& fn)
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mu_);
            queue_.emplace_back([task] { (*task)(); });
            ++unfinished_;
        }
        cv_.notify_one();
        return result;
    }

    /** Blocks until every task submitted so far has finished. */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mu_;
    std::condition_variable cv_;       ///< signals workers: work or stop
    std::condition_variable idle_cv_;  ///< signals waiters: all drained
    uint64_t unfinished_ = 0;
    bool stop_ = false;
};

}  // namespace approxhadoop

#endif  // APPROXHADOOP_COMMON_THREAD_POOL_H_
