#ifndef APPROXHADOOP_COMMON_RANDOM_H_
#define APPROXHADOOP_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace approxhadoop {

/**
 * Deterministic random source used everywhere in the framework.
 *
 * Wraps a 64-bit Mersenne Twister with the handful of draws the framework
 * needs. Every component that needs randomness receives (or derives) an
 * explicit Rng so that whole experiments are reproducible from a single
 * seed. Use derive() to split independent streams (e.g., one per map task)
 * without correlated sequences.
 */
class Rng
{
  public:
    /** Constructs a generator from an explicit seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Returns a uniformly distributed double in [0, 1). */
    double uniform();

    /** Returns a uniformly distributed double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Returns a uniformly distributed integer in [0, n). @pre n > 0 */
    uint64_t uniformInt(uint64_t n);

    /** Returns true with probability @p p (clamped to [0, 1]). */
    bool bernoulli(double p);

    /** Returns a normal deviate with the given mean and stddev. */
    double normal(double mean, double stddev);

    /** Returns a lognormal deviate with the given log-space parameters. */
    double lognormal(double mu, double sigma);

    /** Returns an exponential deviate with the given rate. */
    double exponential(double rate);

    /**
     * Derives an independent child generator.
     *
     * @param stream distinguishes sibling children derived from the same
     *               parent (e.g., a task index)
     */
    Rng derive(uint64_t stream);

    /**
     * Samples @p k distinct indices uniformly from [0, n) in O(k) expected
     * time (Floyd's algorithm). The result is not sorted.
     */
    std::vector<uint64_t> sampleWithoutReplacement(uint64_t n, uint64_t k);

    /** Shuffles @p values in place (Fisher-Yates). */
    template <typename T>
    void
    shuffle(std::vector<T>& values)
    {
        for (size_t i = values.size(); i > 1; --i) {
            size_t j = uniformInt(i);
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Exposes the underlying engine for use with std distributions. */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

/** SplitMix64 step; used for cheap per-item hashing/seeding. */
uint64_t splitmix64(uint64_t x);

}  // namespace approxhadoop

#endif  // APPROXHADOOP_COMMON_RANDOM_H_
