#include "common/logging.h"

#include <cstdio>

namespace approxhadoop {

Logger&
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const std::string& tag, const std::string& msg)
{
    if (level < level_.load(std::memory_order_relaxed)) {
        return;
    }
    static const char* const kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    std::lock_guard<std::mutex> lock(emit_mutex_);
    std::fprintf(stderr, "[%s] %s: %s\n",
                 kNames[static_cast<int>(level)], tag.c_str(), msg.c_str());
}

}  // namespace approxhadoop
