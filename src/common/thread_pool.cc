#include "common/thread_pool.h"

#include <algorithm>

namespace approxhadoop {

ThreadPool::ThreadPool(unsigned num_threads)
{
    num_threads = std::max(1u, num_threads);
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) {
        w.join();
    }
}

uint64_t
ThreadPool::unfinishedTasks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return unfinished_;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stop_ set and queue drained
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // A packaged_task never throws out of operator(): user exceptions
        // land in the future's shared state.
        task();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --unfinished_;
            if (unfinished_ == 0) {
                idle_cv_.notify_all();
            }
        }
    }
}

}  // namespace approxhadoop
