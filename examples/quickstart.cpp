/**
 * @file
 * Quickstart: the ApproxWordCount program from Figure 3 of the paper.
 *
 * Counts word occurrences over a small document set three ways:
 *  1. precise (stock MapReduce),
 *  2. approximate with user-specified ratios (10% input sampling +
 *     25% map dropping), with 95% confidence intervals,
 *  3. approximate with a target error bound (5% with 95% confidence),
 *     letting ApproxHadoop pick the ratios online.
 */
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "core/approx_config.h"
#include "core/approx_job.h"
#include "core/sampling_reducer.h"
#include "hdfs/dataset.h"
#include "hdfs/namenode.h"
#include "mapreduce/job.h"
#include "sim/cluster.h"

using namespace approxhadoop;

namespace {

/** The word-count mapper: one document per record (paper Figure 3). */
class WordCountMapper : public core::MultiStageSamplingMapper
{
  public:
    void
    map(const std::string& record, mr::MapContext& ctx) override
    {
        std::istringstream words(record);
        std::string word;
        while (words >> word) {
            ctx.write(word, 1.0);
        }
    }
};

/** Synthetic "web pages": Zipf-distributed words, 20 per document. */
std::unique_ptr<hdfs::BlockDataset>
makeDocuments()
{
    auto zipf = std::make_shared<ZipfDistribution>(200, 1.1);
    auto generator = [zipf](uint64_t block, uint64_t index) {
        Rng rng(splitmix64(1234 ^ (block * 4099 + index)));
        std::string doc;
        for (int w = 0; w < 20; ++w) {
            if (w > 0) {
                doc += ' ';
            }
            doc += "word" + std::to_string(zipf->sample(rng));
        }
        return doc;
    };
    return std::make_unique<hdfs::GeneratedDataset>(192, 150, generator, 140);
}

mr::JobConfig
wordCountConfig(const std::string& name)
{
    mr::JobConfig config;
    config.name = name;
    config.num_reducers = 4;
    config.map_cost.t0 = 1.0;
    config.map_cost.t_read = 0.010;
    config.map_cost.t_process = 0.012;
    return config;
}

void
printTop(const char* title, const mr::JobResult& result, int top)
{
    std::printf("%s  (runtime %.1fs, energy %.1f Wh, %s)\n", title,
                result.runtime, result.energy_wh,
                result.counters.summary().c_str());
    std::vector<mr::OutputRecord> sorted = result.output;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.value > b.value; });
    for (int i = 0; i < top && i < static_cast<int>(sorted.size()); ++i) {
        const mr::OutputRecord& r = sorted[i];
        if (r.has_bound) {
            std::printf("  %-10s %10.0f  +/- %.0f (95%% CI)\n",
                        r.key.c_str(), r.value, r.errorBound());
        } else {
            std::printf("  %-10s %10.0f\n", r.key.c_str(), r.value);
        }
    }
}

}  // namespace

int
main()
{
    auto documents = makeDocuments();

    // --- 1. Precise run ----------------------------------------------------
    sim::Cluster cluster1(sim::ClusterConfig::xeon10());
    hdfs::NameNode namenode1(cluster1.numServers(), 3, 99);
    core::ApproxJobRunner runner1(cluster1, *documents, namenode1);
    mr::JobResult precise = runner1.runPrecise(
        wordCountConfig("wordcount-precise"),
        [] { return std::make_unique<WordCountMapper>(); },
        [] { return std::make_unique<mr::SumReducer>(); });
    printTop("PRECISE", precise, 5);

    // --- 2. User-specified ratios: 10% sampling, 25% dropping --------------
    sim::Cluster cluster2(sim::ClusterConfig::xeon10());
    hdfs::NameNode namenode2(cluster2.numServers(), 3, 99);
    core::ApproxJobRunner runner2(cluster2, *documents, namenode2);
    core::ApproxConfig ratios;
    ratios.sampling_ratio = 0.10;
    ratios.drop_ratio = 0.25;
    mr::JobResult approx = runner2.runAggregation(
        wordCountConfig("wordcount-ratios"), ratios,
        [] { return std::make_unique<WordCountMapper>(); },
        core::MultiStageSamplingReducer::Op::kCount);
    printTop("\nAPPROX (10% sampling, 25% dropping)", approx, 5);

    // --- 3. Target error bound: 5% at 95% confidence -----------------------
    sim::Cluster cluster3(sim::ClusterConfig::xeon10());
    hdfs::NameNode namenode3(cluster3.numServers(), 3, 99);
    core::ApproxJobRunner runner3(cluster3, *documents, namenode3);
    core::ApproxConfig target;
    target.target_relative_error = 0.05;
    mr::JobResult bounded = runner3.runAggregation(
        wordCountConfig("wordcount-target"), target,
        [] { return std::make_unique<WordCountMapper>(); },
        core::MultiStageSamplingReducer::Op::kCount);
    printTop("\nAPPROX (target 5% error, 95% confidence)", bounded, 5);

    std::printf("\nmax actual error vs precise: ratios=%.2f%% target=%.2f%%\n",
                100.0 * approx.maxRelativeErrorAgainst(precise),
                100.0 * bounded.maxRelativeErrorAgainst(precise));
    return 0;
}
