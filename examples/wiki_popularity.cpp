/**
 * @file
 * Wikipedia log analysis: Project Popularity over a synthetic week of
 * the Wikimedia access logs (744 blocks), precise vs. 1% input sampling
 * — the scenario behind Figures 5(c) and 7 of the paper.
 */
#include <algorithm>
#include <cstdio>
#include <memory>

#include "apps/log_apps.h"
#include "core/approx_config.h"
#include "core/approx_job.h"
#include "hdfs/namenode.h"
#include "sim/cluster.h"
#include "workloads/access_log.h"

using namespace approxhadoop;

int
main()
{
    workloads::AccessLogParams params;
    params.num_blocks = 744;       // one week of logs
    params.entries_per_block = 200;
    auto log = workloads::makeAccessLog(params);

    // Precise baseline.
    sim::Cluster cluster1(sim::ClusterConfig::xeon10());
    hdfs::NameNode nn1(cluster1.numServers(), 3, 7);
    core::ApproxJobRunner runner1(cluster1, *log, nn1);
    mr::JobResult precise = runner1.runPrecise(
        apps::logProcessingConfig("ProjectPopularity-precise",
                                  params.entries_per_block),
        apps::ProjectPopularity::mapperFactory(),
        apps::ProjectPopularity::preciseReducerFactory());

    // Approximate with 1% input data sampling.
    sim::Cluster cluster2(sim::ClusterConfig::xeon10());
    hdfs::NameNode nn2(cluster2.numServers(), 3, 7);
    core::ApproxJobRunner runner2(cluster2, *log, nn2);
    core::ApproxConfig approx;
    approx.sampling_ratio = 0.01;
    mr::JobResult sampled = runner2.runAggregation(
        apps::logProcessingConfig("ProjectPopularity-1pct",
                                  params.entries_per_block),
        approx, apps::ProjectPopularity::mapperFactory(),
        apps::ProjectPopularity::kOp);

    std::printf("precise: %.0fs   1%% sampling: %.0fs  (%.0f%% faster)\n",
                precise.runtime, sampled.runtime,
                100.0 * (1.0 - sampled.runtime / precise.runtime));

    // Top projects, precise vs approximate with CIs (Figure 5(c) style).
    std::vector<mr::OutputRecord> top = precise.output;
    std::sort(top.begin(), top.end(),
              [](const auto& a, const auto& b) { return a.value > b.value; });
    auto approx_map = sampled.toMap();
    std::printf("%-10s %12s %14s\n", "project", "precise", "approx (CI)");
    for (size_t i = 0; i < 8 && i < top.size(); ++i) {
        auto it = approx_map.find(top[i].key);
        if (it == approx_map.end()) {
            std::printf("%-10s %12.0f %14s\n", top[i].key.c_str(),
                        top[i].value, "(missed)");
        } else {
            std::printf("%-10s %12.0f %10.0f +/- %.0f\n", top[i].key.c_str(),
                        top[i].value, it->second.value,
                        it->second.errorBound());
        }
    }

    mr::JobResult::HeadlineError err = sampled.headlineErrorAgainst(precise);
    std::printf("worst-predicted key %s: actual %.2f%%, 95%% CI %.2f%%\n",
                err.key.c_str(), 100.0 * err.actual_relative_error,
                100.0 * err.bound_relative_error);
    return 0;
}
