/**
 * @file
 * Fault tolerance under approximation: Project Popularity over a week
 * of access logs with a 2% target error while map attempts crash,
 * shuffle chunks arrive corrupted, input records are malformed, reduce
 * attempts die mid-merge, a server dies mid-job, and stragglers run
 * slow.
 *
 * The same job runs four times:
 *   fault-free  — baseline, no injected faults
 *   retry       — classic Hadoop recovery: re-execute failed attempts
 *   absorb      — failed tasks become dropped clusters; the CI widens
 *                 instead of the job re-running work (Section 4 insight:
 *                 a failed map task is statistically identical to a
 *                 dropped one)
 *   auto        — the framework absorbs while the predicted end-of-job
 *                 bound still meets the target, else retries
 *
 * A second table reruns the retry variant under increasing heartbeat
 * task timeouts: crashes are only discovered when a heartbeat goes
 * missing, so the detection wait — and with it the job runtime —
 * grows with the timeout.
 */
#include <cstdio>

#include "apps/log_apps.h"
#include "core/approx_config.h"
#include "core/approx_job.h"
#include "ft/fault_plan.h"
#include "ft/recovery_policy.h"
#include "hdfs/namenode.h"
#include "mapreduce/job_config.h"
#include "sim/cluster.h"
#include "workloads/access_log.h"

using namespace approxhadoop;

namespace {

struct Variant
{
    const char* label;
    const char* plan;  // nullptr = fault-free
    ft::FailureMode mode;
};

}  // namespace

int
main()
{
    workloads::AccessLogParams params;
    params.num_blocks = 744;
    params.entries_per_block = 200;
    auto log = workloads::makeAccessLog(params);

    // Precise reference for actual-error measurement.
    sim::Cluster c0(sim::ClusterConfig::xeon10());
    hdfs::NameNode nn0(c0.numServers(), 3, 11);
    core::ApproxJobRunner r0(c0, *log, nn0);
    mr::JobResult precise = r0.runPrecise(
        apps::logProcessingConfig("ProjectPopularity",
                                  params.entries_per_block),
        apps::ProjectPopularity::mapperFactory(),
        apps::ProjectPopularity::preciseReducerFactory());
    std::printf("precise runtime: %.0fs\n\n", precise.runtime);

    const char* kPlan =
        "crash=0.05,corrupt=0.1,badrec=0.02,rcrash=0.3,"
        "straggler=0.03:6,server=3@40+200,seed=7";
    const Variant variants[] = {
        {"fault-free", nullptr, ft::FailureMode::kRetry},
        {"retry", kPlan, ft::FailureMode::kRetry},
        {"absorb", kPlan, ft::FailureMode::kAbsorb},
        {"auto", kPlan, ft::FailureMode::kAuto},
    };

    std::printf("%11s %9s %11s %8s %8s %8s %9s %8s %11s\n", "mode",
                "runtime", "actual err", "failed", "retried", "absorbed",
                "corrupt", "replayed", "wasted s");
    for (const Variant& v : variants) {
        sim::Cluster cluster(sim::ClusterConfig::xeon10());
        hdfs::NameNode nn(cluster.numServers(), 3, 11);
        core::ApproxJobRunner runner(cluster, *log, nn);

        mr::JobConfig config = apps::logProcessingConfig(
            "ProjectPopularity", params.entries_per_block);
        if (v.plan != nullptr) {
            config.fault_plan = ft::FaultPlan::parse(v.plan);
        }
        config.failure_mode = v.mode;
        // Crashes and corruption-lost outputs compound per attempt;
        // this demo measures recovery cost, not job abortion.
        config.recovery.max_attempts = 50;

        core::ApproxConfig approx;
        approx.target_relative_error = 0.02;
        mr::JobResult result = runner.runAggregation(
            config, approx, apps::ProjectPopularity::mapperFactory(),
            apps::ProjectPopularity::kOp);

        mr::JobResult::HeadlineError err =
            result.headlineErrorAgainst(precise);
        const mr::Counters& c = result.counters;
        std::printf("%11s %8.0fs %10.2f%% %8lu %8lu %8lu %9lu %8lu "
                    "%11.0f\n",
                    v.label, result.runtime,
                    100.0 * err.actual_relative_error,
                    static_cast<unsigned long>(c.map_attempts_failed),
                    static_cast<unsigned long>(c.maps_retried),
                    static_cast<unsigned long>(c.maps_absorbed),
                    static_cast<unsigned long>(c.chunks_corrupted),
                    static_cast<unsigned long>(c.chunks_replayed),
                    c.wasted_attempt_seconds);
    }

    std::printf("\nAbsorb turns recovery work into a slightly wider "
                "confidence interval;\nretry reproduces the fault-free "
                "answer at the cost of re-executed attempts.\n");

    // Heartbeat detection latency: a *precise* crashy retry job (every
    // map must finish, so recovery time cannot hide behind an
    // early-met error target). The tracker only declares an attempt
    // dead after task_timeout_ms of missing heartbeats; longer
    // timeouts mean fewer false positives on a real cluster — and
    // slower recovery here.
    std::printf("\n%11s %9s %10s %14s\n", "timeout", "runtime",
                "timeouts", "detect wait");
    for (double timeout_ms : {1000.0, 10000.0, 60000.0}) {
        sim::Cluster cluster(sim::ClusterConfig::xeon10());
        hdfs::NameNode nn(cluster.numServers(), 3, 11);
        core::ApproxJobRunner runner(cluster, *log, nn);

        mr::JobConfig config = apps::logProcessingConfig(
            "ProjectPopularity", params.entries_per_block);
        config.fault_plan = ft::FaultPlan::parse("crash=0.1,seed=7");
        config.failure_mode = ft::FailureMode::kRetry;
        config.recovery.max_attempts = 50;
        config.heartbeat_interval_ms = 500.0;
        config.task_timeout_ms = timeout_ms;

        mr::JobResult result = runner.runPrecise(
            config, apps::ProjectPopularity::mapperFactory(),
            apps::ProjectPopularity::preciseReducerFactory());
        std::printf("%10.0fs %8.0fs %10lu %13.0fs\n", timeout_ms / 1000.0,
                    result.runtime,
                    static_cast<unsigned long>(
                        result.counters.timeouts_detected),
                    result.counters.detection_wait_seconds);
    }
    return 0;
}
