/**
 * @file
 * User-defined approximation (the paper's third mechanism): the video
 * FrameEncoder runs a precise exhaustive motion search or a cheap
 * diamond search per map task; ApproxHadoop mixes the two per-task.
 * Quality (PSNR) degrades gracefully as more tasks go approximate while
 * runtime drops.
 */
#include <cstdio>

#include "apps/frame_encoder_app.h"
#include "core/approx_config.h"
#include "core/approx_job.h"
#include "hdfs/namenode.h"
#include "sim/cluster.h"

using namespace approxhadoop;

int
main()
{
    auto frames = apps::FrameEncoderApp::makeFrames(160, 120, 21);

    std::printf("%12s %10s %12s %12s\n", "approx frac", "runtime",
                "avg bits", "avg PSNR");
    for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        sim::Cluster cluster(sim::ClusterConfig::xeon10());
        hdfs::NameNode nn(cluster.numServers(), 3, 17);
        core::ApproxJobRunner runner(cluster, *frames, nn);
        core::ApproxConfig approx;
        approx.user_defined_fraction = fraction;
        mr::JobResult result = runner.runUserDefined(
            apps::FrameEncoderApp::jobConfig(120), approx,
            apps::FrameEncoderApp::mapperFactory(),
            apps::FrameEncoderApp::reducerFactory());
        const mr::OutputRecord* bits = result.find("bits");
        const mr::OutputRecord* psnr = result.find("psnr");
        std::printf("%11.0f%% %9.0fs %12.0f %11.2fdB\n", 100.0 * fraction,
                    result.runtime, bits ? bits->value : 0.0,
                    psnr ? psnr->value : 0.0);
    }
    return 0;
}
