/**
 * @file
 * Datacenter placement with extreme-value (GEV) error bounds: each map
 * task runs simulated-annealing searches and the reduce task estimates
 * the achievable minimum cost with a confidence interval — the paper's
 * Figure 8 scenario. Demonstrates both a fixed dropping ratio and a
 * target error bound.
 */
#include <cstdio>
#include <memory>

#include "apps/dc_placement_app.h"
#include "core/approx_config.h"
#include "core/approx_job.h"
#include "hdfs/namenode.h"
#include "sim/cluster.h"
#include "workloads/dc_placement.h"

using namespace approxhadoop;

int
main()
{
    workloads::DCPlacementParams problem_params;
    problem_params.max_latency_ms = 50.0;
    problem_params.sa_iterations = 400;  // under-converged searches spread
                                         // the per-task minima for the GEV
    auto problem = std::make_shared<const workloads::DCPlacementProblem>(
        problem_params);

    const uint64_t kMaps = 80;
    const uint64_t kSeedsPerMap = 4;
    auto seeds = workloads::makeDCPlacementSeeds(kMaps, kSeedsPerMap, 42);

    // The paper runs this CPU-bound app with 4 map slots per server.
    sim::ClusterConfig cluster_config = sim::ClusterConfig::xeon10();
    cluster_config.map_slots_per_server = 4;

    auto report = [&](const char* label, const mr::JobResult& result) {
        const mr::OutputRecord* r = result.find(apps::DCPlacementApp::kKey);
        if (r == nullptr) {
            std::printf("%s: no output!\n", label);
            return;
        }
        std::printf("%s: runtime %.0fs, executed %llu/%llu maps, "
                    "min cost %.1f  [%.1f, %.1f] (95%%)\n",
                    label, result.runtime,
                    static_cast<unsigned long long>(
                        result.counters.maps_completed),
                    static_cast<unsigned long long>(
                        result.counters.maps_total),
                    r->value, r->lower, r->upper);
    };

    // 1. All maps execute (the baseline "precise" approximation).
    {
        sim::Cluster cluster(cluster_config);
        hdfs::NameNode nn(cluster.numServers(), 3, 5);
        core::ApproxJobRunner runner(cluster, *seeds, nn);
        core::ApproxConfig approx;  // no dropping
        report("all maps   ",
               runner.runExtreme(
                   apps::DCPlacementApp::jobConfig(kSeedsPerMap), approx,
                   apps::DCPlacementApp::mapperFactory(problem), true));
    }

    // 2. Drop 50% of the maps (user-specified ratio).
    {
        sim::Cluster cluster(cluster_config);
        hdfs::NameNode nn(cluster.numServers(), 3, 5);
        core::ApproxJobRunner runner(cluster, *seeds, nn);
        core::ApproxConfig approx;
        approx.drop_ratio = 0.5;
        report("drop 50%   ",
               runner.runExtreme(
                   apps::DCPlacementApp::jobConfig(kSeedsPerMap), approx,
                   apps::DCPlacementApp::mapperFactory(problem), true));
    }

    // 3. Target a 5% error bound; ApproxHadoop stops as soon as the GEV
    //    confidence interval is tight enough.
    {
        sim::Cluster cluster(cluster_config);
        hdfs::NameNode nn(cluster.numServers(), 3, 5);
        core::ApproxJobRunner runner(cluster, *seeds, nn);
        core::ApproxConfig approx;
        approx.target_relative_error = 0.05;
        report("target 5%  ",
               runner.runExtreme(
                   apps::DCPlacementApp::jobConfig(kSeedsPerMap), approx,
                   apps::DCPlacementApp::mapperFactory(problem), true));
    }
    return 0;
}
