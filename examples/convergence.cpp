/**
 * @file
 * Error convergence during a running job: thanks to the barrier-less
 * incremental reduce (paper Section 4.3), error bounds can be observed
 * *while the Map phase is still executing*. This example tracks the
 * estimate and 95% CI of the top project's access count as map tasks
 * complete, plus the Chao1 extrapolation of the total number of
 * distinct keys (the paper's Section 3.1 remark on estimating how many
 * keys the sample missed).
 */
#include <cstdio>

#include "apps/log_apps.h"
#include "core/approx_config.h"
#include "core/approx_input_format.h"
#include "core/sampling_reducer.h"
#include "hdfs/namenode.h"
#include "mapreduce/job.h"
#include "sim/cluster.h"
#include "workloads/access_log.h"

using namespace approxhadoop;

namespace {

/** Controller that snapshots the live estimate as maps complete. */
class ConvergenceObserver : public mr::JobController
{
  public:
    explicit ConvergenceObserver(const core::MultiStageSamplingReducer*
                                     reducer)
        : reducer_(reducer)
    {
    }

    void
    onMapComplete(mr::JobHandle& job, const mr::MapTaskInfo&) override
    {
        uint64_t done = job.completedMaps();
        if (done % 40 != 0) {
            return;
        }
        for (const core::KeyEstimate& est :
             reducer_->currentEstimates(job.numMapTasks())) {
            if (est.key == "proj0") {
                std::printf("%9llu %9.0fs %12.0f %11.0f %10.1f%% %12.0f\n",
                            static_cast<unsigned long long>(done),
                            job.now(), est.value,
                            est.finite ? est.error_bound : -1.0,
                            100.0 * est.relativeError(),
                            reducer_->estimateDistinctKeys());
            }
        }
    }

  private:
    const core::MultiStageSamplingReducer* reducer_;
};

}  // namespace

int
main()
{
    workloads::AccessLogParams params;
    params.num_blocks = 400;
    params.entries_per_block = 300;
    auto log = workloads::makeAccessLog(params);

    sim::Cluster cluster(sim::ClusterConfig::xeon10());
    hdfs::NameNode nn(cluster.numServers(), 3, 3);

    auto reducer = std::make_unique<core::MultiStageSamplingReducer>(
        core::MultiStageSamplingReducer::Op::kCount, 0.95);
    ConvergenceObserver observer(reducer.get());

    mr::Job job(cluster, *log, nn,
                apps::logProcessingConfig("convergence", 300));
    job.setMapperFactory(apps::ProjectPopularity::mapperFactory());
    job.setReducerFactory([&reducer]() -> std::unique_ptr<mr::Reducer> {
        return std::move(reducer);
    });
    job.setInputFormat(std::make_shared<core::ApproxTextInputFormat>());
    job.setInitialSamplingRatio(0.1);
    job.setController(&observer);

    std::printf("%9s %10s %12s %11s %11s %12s\n", "maps done", "sim time",
                "proj0 est", "95% CI", "rel err", "Chao1 keys");
    mr::JobResult result = job.run();
    std::printf("\nfinal: %zu keys observed; job found proj0 = %.0f\n",
                result.output.size(), result.find("proj0")->value);
    return 0;
}
