/**
 * @file
 * Target-error mode end to end: Project Popularity over a week of logs
 * with targets from 0.5% to 5%, showing how ApproxHadoop picks
 * dropping/sampling ratios online (Figure 9(a) of the paper), plus the
 * pilot-wave variant for Page Popularity (Figure 9(b)).
 */
#include <cstdio>

#include "apps/log_apps.h"
#include "core/approx_config.h"
#include "core/approx_job.h"
#include "hdfs/namenode.h"
#include "sim/cluster.h"
#include "workloads/access_log.h"

using namespace approxhadoop;

int
main()
{
    workloads::AccessLogParams params;
    params.num_blocks = 744;
    params.entries_per_block = 200;
    auto log = workloads::makeAccessLog(params);

    // Precise reference for actual-error measurement.
    sim::Cluster c0(sim::ClusterConfig::xeon10());
    hdfs::NameNode nn0(c0.numServers(), 3, 11);
    core::ApproxJobRunner r0(c0, *log, nn0);
    mr::JobResult precise = r0.runPrecise(
        apps::logProcessingConfig("ProjectPopularity",
                                  params.entries_per_block),
        apps::ProjectPopularity::mapperFactory(),
        apps::ProjectPopularity::preciseReducerFactory());
    std::printf("precise runtime: %.0fs\n\n", precise.runtime);

    std::printf("%8s %10s %10s %10s %12s\n", "target", "runtime",
                "dropped", "sampled", "actual err");
    for (double target : {0.005, 0.01, 0.02, 0.05}) {
        sim::Cluster cluster(sim::ClusterConfig::xeon10());
        hdfs::NameNode nn(cluster.numServers(), 3, 11);
        core::ApproxJobRunner runner(cluster, *log, nn);
        core::ApproxConfig approx;
        approx.target_relative_error = target;
        mr::JobResult result = runner.runAggregation(
            apps::logProcessingConfig("ProjectPopularity",
                                      params.entries_per_block),
            approx, apps::ProjectPopularity::mapperFactory(),
            apps::ProjectPopularity::kOp);
        mr::JobResult::HeadlineError err =
            result.headlineErrorAgainst(precise);
        std::printf("%7.1f%% %9.0fs %9.0f%% %9.0f%% %11.2f%%\n",
                    100.0 * target, result.runtime,
                    100.0 * result.counters.droppedFraction(),
                    100.0 * result.counters.effectiveSamplingRatio(),
                    100.0 * err.actual_relative_error);
    }

    // Pilot-wave variant (Page Popularity, Figure 9(b)).
    std::printf("\nwith a 1%% pilot wave (PagePopularity, target 1%%):\n");
    sim::Cluster cluster(sim::ClusterConfig::xeon10());
    hdfs::NameNode nn(cluster.numServers(), 3, 11);
    core::ApproxJobRunner runner(cluster, *log, nn);
    core::ApproxConfig approx;
    approx.target_relative_error = 0.01;
    approx.pilot.enabled = true;
    approx.pilot.maps = 40;
    approx.pilot.sampling_ratio = 0.01;
    mr::JobResult result = runner.runAggregation(
        apps::logProcessingConfig("PagePopularity",
                                  params.entries_per_block),
        approx, apps::PagePopularity::mapperFactory(),
        apps::PagePopularity::kOp);
    std::printf("runtime %.0fs, dropped %.0f%%, effective sampling %.1f%%\n",
                result.runtime, 100.0 * result.counters.droppedFraction(),
                100.0 * result.counters.effectiveSamplingRatio());
    return 0;
}
