/**
 * @file
 * Departmental web-server log analysis (paper Section 5.4): Request
 * Rate and Attack Frequencies over an 80-week log, showing how the key
 * value distribution drives approximation quality — stable hourly rates
 * estimate tightly, rare attack counts do not.
 */
#include <algorithm>
#include <cstdio>

#include "apps/webserver_apps.h"
#include "core/approx_config.h"
#include "core/approx_job.h"
#include "hdfs/namenode.h"
#include "sim/cluster.h"
#include "workloads/webserver_log.h"

using namespace approxhadoop;

namespace {

template <typename App>
void
runApp(const char* label, const hdfs::BlockDataset& log,
       uint64_t entries_per_block)
{
    // Precise baseline.
    sim::Cluster c1(sim::ClusterConfig::xeon10());
    hdfs::NameNode nn1(c1.numServers(), 3, 3);
    core::ApproxJobRunner r1(c1, log, nn1);
    mr::JobResult precise =
        r1.runPrecise(apps::webServerLogConfig(label, entries_per_block),
                      App::mapperFactory(), App::preciseReducerFactory());

    // 1% input data sampling.
    sim::Cluster c2(sim::ClusterConfig::xeon10());
    hdfs::NameNode nn2(c2.numServers(), 3, 3);
    core::ApproxJobRunner r2(c2, log, nn2);
    core::ApproxConfig approx;
    approx.sampling_ratio = 0.01;
    mr::JobResult sampled = r2.runAggregation(
        apps::webServerLogConfig(label, entries_per_block), approx,
        App::mapperFactory(), App::kOp);

    mr::JobResult::HeadlineError err = sampled.headlineErrorAgainst(precise);
    std::printf("%-18s precise %5.1fs | 1%% sampling %5.1fs | "
                "keys %zu->%zu | worst-key err %.2f%% (CI %.2f%%)\n",
                label, precise.runtime, sampled.runtime,
                precise.output.size(), sampled.output.size(),
                100.0 * err.actual_relative_error,
                100.0 * err.bound_relative_error);
}

}  // namespace

int
main()
{
    workloads::WebServerLogParams params;
    // Enough entries per week-block that 1% sampling still observes the
    // rare attack lines (see DESIGN.md on block scaling).
    params.entries_per_week = 5000;
    auto log = workloads::makeWebServerLog(params);

    runApp<apps::WebRequestRate>("RequestRate", *log,
                                 params.entries_per_week);
    runApp<apps::AttackFrequencies>("AttackFrequencies", *log,
                                    params.entries_per_week);
    runApp<apps::TotalSize>("TotalSize", *log, params.entries_per_week);
    runApp<apps::RequestSize>("RequestSize", *log, params.entries_per_week);
    runApp<apps::ClientBrowser>("ClientBrowser", *log,
                                params.entries_per_week);
    return 0;
}
