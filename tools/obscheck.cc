/**
 * @file
 * obscheck — schema validator for approxrun/approxchaos observability
 * artifacts. CI runs it on every --report-json / --trace-out file so a
 * refactor cannot silently ship malformed or internally inconsistent
 * JSON.
 *
 *   obscheck --report run.report.json --trace run.trace.json
 *
 * Checks:
 *  - the report parses, carries the expected schema tag, and has every
 *    required top-level section;
 *  - per-wave plan/outcome rows match the counters' wave count on
 *    successful runs;
 *  - the trace parses, is a Chrome trace-event container, and simulated
 *    timestamps are monotone non-decreasing within each (pid, tid) row.
 *
 * Exit codes: 0 valid, 1 validation failure, 2 usage/IO error.
 */
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "journal/journal.h"
#include "mapreduce/counters.h"
#include "obs/json.h"

using namespace approxhadoop;

namespace {

enum ExitCode { kExitOk = 0, kExitInvalid = 1, kExitBadUsage = 2 };

void
usage()
{
    std::printf("usage: obscheck [--report FILE] [--trace FILE] "
                "[--service-report FILE] [--journal FILE]\n"
                "\n"
                "validates approxrun --report-json, --trace-out,\n"
                "approxsvc --report-json, and approxrun --journal\n"
                "artifacts; at least one flag is required\n"
                "\n"
                "exit codes: 0 valid, 1 validation failure, 2 bad "
                "usage/unreadable file\n");
}

bool
readFile(const std::string& path, std::string& out)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        std::fprintf(stderr, "obscheck: cannot read %s\n", path.c_str());
        return false;
    }
    char buf[65536];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        out.append(buf, n);
    }
    std::fclose(f);
    return true;
}

/** Collects failures so one run reports every problem, not just the
 *  first. */
struct Checker
{
    int failures = 0;

    void fail(const std::string& what)
    {
        std::fprintf(stderr, "obscheck: %s\n", what.c_str());
        ++failures;
    }

    void require(bool ok, const std::string& what)
    {
        if (!ok) {
            fail(what);
        }
    }
};

void
checkReport(const std::string& path, Checker& check)
{
    std::string text;
    if (!readFile(path, text)) {
        std::exit(kExitBadUsage);
    }
    std::string error;
    std::optional<obs::JsonValue> doc = obs::parseJson(text, &error);
    if (!doc) {
        check.fail("report " + path + ": " + error);
        return;
    }
    const obs::JsonValue& v = *doc;
    check.require(v.isObject(), "report: root is not an object");
    check.require(v.at("schema").string == "approxhadoop-job-report/1",
                  "report: schema tag is not approxhadoop-job-report/1");
    for (const char* key :
         {"app", "status", "config", "counters", "results", "waves",
          "replans", "metrics", "wall_clock"}) {
        check.require(v.has(key),
                      std::string("report: missing key '") + key + "'");
    }
    const std::string& status = v.at("status").string;
    check.require(status == "ok" || status == "failed",
                  "report: status must be ok or failed, got '" + status +
                      "'");
    check.require(v.at("runtime_s").isNumber(),
                  "report: runtime_s is not a number");
    const obs::JsonValue& counters = v.at("counters");
    check.require(counters.isObject(), "report: counters is not an object");
    for (const char* key : {"maps_total", "maps_completed", "waves",
                            "items_total", "items_processed"}) {
        check.require(counters.at(key).isNumber(),
                      std::string("report: counters.") + key +
                          " is not a number");
    }
    // Fleet-elasticity fields (additive in schema /1: absent in reports
    // from older builds, typed + conserved when present).
    for (const char* key : {"servers_added", "servers_revoked",
                            "servers_drained", "servers_retired"}) {
        if (counters.has(key)) {
            check.require(counters.at(key).isNumber(),
                          std::string("report: counters.") + key +
                              " is not a number");
        }
    }
    if (counters.has("servers_revoked") &&
        counters.has("server_crashes") &&
        counters.at("servers_revoked").isNumber() &&
        counters.at("server_crashes").isNumber()) {
        check.require(counters.at("servers_revoked").number <=
                          counters.at("server_crashes").number,
                      "report: counters.servers_revoked exceeds "
                      "server_crashes (every storm victim is a crash)");
    }
    if (counters.has("servers_retired") &&
        counters.has("servers_drained") &&
        counters.has("servers_revoked") &&
        counters.at("servers_retired").isNumber()) {
        check.require(counters.at("servers_retired").number <=
                          counters.at("servers_drained").number +
                              counters.at("servers_revoked").number,
                      "report: counters.servers_retired exceeds "
                      "drained+revoked (a server only leaves via drain "
                      "or permanent revocation)");
    }
    if (v.at("config").isObject() && v.at("config").has("cluster")) {
        check.require(v.at("config").at("cluster").isString(),
                      "report: config.cluster is not a string");
    }
    const obs::JsonValue& waves = v.at("waves");
    check.require(waves.isArray(), "report: waves is not an array");
    if (status == "ok" && waves.isArray() &&
        counters.at("waves").isNumber()) {
        // Every wave the job ran must carry exactly one plan/outcome row.
        double expected = counters.at("waves").number;
        check.require(
            static_cast<double>(waves.array.size()) == expected,
            "report: waves has " + std::to_string(waves.array.size()) +
                " rows but counters.waves = " +
                std::to_string(static_cast<long long>(expected)));
    }
    for (const obs::JsonValue& row : waves.array) {
        check.require(row.has("wave") && row.has("plan") &&
                          row.has("outcome"),
                      "report: wave row missing wave/plan/outcome");
        check.require(row.at("plan").at("maps_started").isNumber(),
                      "report: wave plan missing maps_started");
        check.require(row.at("outcome").at("completed").isNumber(),
                      "report: wave outcome missing completed");
    }
    for (const obs::JsonValue& rec : v.at("replans").array) {
        const std::string& trigger = rec.at("trigger").string;
        check.require(trigger == "pilot" || trigger == "replan" ||
                          trigger == "achieved" || trigger == "user-drop",
                      "report: bad replan trigger '" + trigger + "'");
        check.require(rec.at("sampling_ratio").isNumber() &&
                          rec.at("sampling_ratio").number > 0.0 &&
                          rec.at("sampling_ratio").number <= 1.0,
                      "report: replan sampling_ratio out of (0, 1]");
    }
    for (const obs::JsonValue& row : v.at("results").array) {
        check.require(row.has("key") && row.at("value").isNumber(),
                      "report: result row missing key/value");
    }
    check.require(v.at("wall_clock").isObject(),
                  "report: wall_clock is not an object");
}

void
checkServiceReport(const std::string& path, Checker& check)
{
    std::string text;
    if (!readFile(path, text)) {
        std::exit(kExitBadUsage);
    }
    std::string error;
    std::optional<obs::JsonValue> doc = obs::parseJson(text, &error);
    if (!doc) {
        check.fail("service report " + path + ": " + error);
        return;
    }
    const obs::JsonValue& v = *doc;
    check.require(v.isObject(), "service report: root is not an object");
    check.require(
        v.at("schema").string == "approxhadoop-service-report/1",
        "service report: schema tag is not "
        "approxhadoop-service-report/1");
    for (const char* key :
         {"spec", "seed", "duration", "sim_makespan", "jobs_submitted",
          "jobs_completed", "jobs_failed", "peak_queue_depth",
          "energy_wh", "tenants"}) {
        check.require(v.has(key), std::string("service report: missing "
                                              "key '") +
                                      key + "'");
    }
    for (const char* key : {"seed", "duration", "sim_makespan",
                            "jobs_submitted", "jobs_completed",
                            "jobs_failed", "peak_queue_depth",
                            "energy_wh"}) {
        check.require(v.at(key).isNumber(),
                      std::string("service report: ") + key +
                          " is not a number");
    }
    // Submission accounting must balance: every job completed or
    // failed (the service refuses to finish with stalled jobs).
    check.require(v.at("jobs_submitted").number ==
                      v.at("jobs_completed").number +
                          v.at("jobs_failed").number,
                  "service report: submitted != completed + failed");
    const obs::JsonValue& tenants = v.at("tenants");
    if (!tenants.isArray() || tenants.array.empty()) {
        check.fail("service report: tenants is not a non-empty array");
        return;
    }
    double tenant_submitted = 0.0;
    for (const obs::JsonValue& t : tenants.array) {
        check.require(t.isObject() && t.has("name"),
                      "service report: tenant row missing name");
        for (const char* key :
             {"priority", "weight", "jobs_submitted", "jobs_completed",
              "jobs_failed", "jobs_degraded", "p50_latency",
              "p99_latency", "mean_latency", "goodput_per_ksec",
              "mean_rel_ci_width", "max_rel_ci_width",
              "target_rel_error", "slot_seconds", "slo_seconds",
              "slo_violations"}) {
            check.require(t.at(key).isNumber(),
                          std::string("service report: tenant.") + key +
                              " is not a number");
        }
        check.require(t.at("p50_latency").number <=
                          t.at("p99_latency").number,
                      "service report: tenant p50 > p99");
        check.require(t.at("jobs_degraded").number <=
                          t.at("jobs_completed").number,
                      "service report: tenant degraded > completed");
        check.require(t.at("slot_seconds").number >= 0.0,
                      "service report: negative tenant slot_seconds");
        tenant_submitted += t.at("jobs_submitted").number;
    }
    check.require(tenant_submitted == v.at("jobs_submitted").number,
                  "service report: tenant submissions do not sum to "
                  "the total");
}

void
checkTrace(const std::string& path, Checker& check)
{
    std::string text;
    if (!readFile(path, text)) {
        std::exit(kExitBadUsage);
    }
    std::string error;
    std::optional<obs::JsonValue> doc = obs::parseJson(text, &error);
    if (!doc) {
        check.fail("trace " + path + ": " + error);
        return;
    }
    const obs::JsonValue& events = doc->at("traceEvents");
    if (!events.isArray()) {
        check.fail("trace: traceEvents is not an array");
        return;
    }
    check.require(!events.array.empty(), "trace: traceEvents is empty");
    // Per-row monotonicity: the exporter sorts by (pid, tid, ts), so the
    // simulated clock must never run backwards within one track row.
    std::map<std::pair<double, double>, double> last_ts;
    bool saw_metadata = false;
    for (const obs::JsonValue& e : events.array) {
        if (!e.isObject() || !e.has("ph") || !e.has("pid") ||
            !e.has("tid")) {
            check.fail("trace: event without ph/pid/tid");
            return;
        }
        const std::string& ph = e.at("ph").string;
        if (ph == "M") {
            saw_metadata = true;
            continue;
        }
        check.require(e.at("ts").isNumber() && e.at("ts").number >= 0.0,
                      "trace: non-'M' event without a valid ts");
        check.require(e.has("name"), "trace: event without a name");
        auto row = std::make_pair(e.at("pid").number, e.at("tid").number);
        auto it = last_ts.find(row);
        if (it != last_ts.end() && e.at("ts").number < it->second) {
            check.fail("trace: ts not monotone within a (pid, tid) row");
            return;
        }
        last_ts[row] = e.at("ts").number;
        if (ph == "X") {
            check.require(e.at("dur").isNumber() &&
                              e.at("dur").number >= 0.0,
                          "trace: 'X' event without a valid dur");
        }
    }
    check.require(saw_metadata,
                  "trace: no 'M' metadata events (track names missing)");
}

/**
 * Validates a --journal file: framing and checksum stamps (via
 * parseJournal), RunSpec sanity, consecutive non-marker epoch indices,
 * a non-decreasing simulated clock, monotone progress counters, resume
 * marker ordinals, and — when the run sealed its final epoch — the
 * counter conservation identities. A torn trailing frame is reported
 * but is NOT a failure: it is the expected artifact of a killed driver.
 */
void
checkJournal(const std::string& path, Checker& check)
{
    std::string bytes;
    try {
        bytes = journal::readJournalFile(path);
    } catch (const journal::JournalError& e) {
        std::fprintf(stderr, "obscheck: %s\n", e.what());
        std::exit(kExitBadUsage);
    }
    journal::LoadedJournal loaded;
    try {
        loaded = journal::parseJournal(bytes);
    } catch (const journal::JournalError& e) {
        check.fail("journal " + path + ": " + e.what());
        return;
    }
    if (loaded.torn_tail) {
        std::printf("obscheck: journal %s has a torn trailing frame "
                    "(killed driver); sealed prefix is %llu bytes\n",
                    path.c_str(),
                    static_cast<unsigned long long>(loaded.sealed_bytes));
    }

    const journal::RunSpec& spec = loaded.spec;
    check.require(!spec.app.empty(), "journal: RunSpec.app is empty");
    check.require(spec.blocks >= 1, "journal: RunSpec.blocks must be >= 1");
    check.require(spec.items >= 1, "journal: RunSpec.items must be >= 1");
    check.require(spec.reducers >= 1,
                  "journal: RunSpec.reducers must be >= 1");
    check.require(spec.threads >= 1,
                  "journal: RunSpec.threads must be >= 1");

    uint64_t expect_index = 0;
    uint32_t markers = 0;
    double last_sim = 0.0;
    uint64_t last_completed = 0;
    uint64_t last_terminal = 0;
    const journal::Epoch* final_epoch = nullptr;
    const journal::Epoch* last_nonmarker = nullptr;
    for (size_t i = 0; i < loaded.epochs.size(); ++i) {
        const journal::Epoch& e = loaded.epochs[i];
        std::string at = "journal: epoch frame " + std::to_string(i);
        check.require(e.sim_time >= last_sim,
                      at + ": sim_time runs backwards (" +
                          std::to_string(e.sim_time) + " after " +
                          std::to_string(last_sim) + ")");
        last_sim = e.sim_time;

        if (e.kind == journal::Epoch::kResumeMarker) {
            ++markers;
            check.require(e.index == markers,
                          at + ": resume marker ordinal " +
                              std::to_string(e.index) + ", expected " +
                              std::to_string(markers));
            continue;
        }
        check.require(e.index == expect_index,
                      at + ": epoch index " + std::to_string(e.index) +
                          ", expected " + std::to_string(expect_index));
        ++expect_index;
        if (e.kind == journal::Epoch::kWave) {
            check.require(e.wave >= 0, at + ": wave epoch without a "
                                            "wave number");
        } else {
            check.require(e.wave == -1,
                          at + ": non-wave epoch carries wave " +
                              std::to_string(e.wave));
        }
        check.require(e.maps_completed <= e.maps_terminal,
                      at + ": maps_completed exceeds maps_terminal");
        check.require(e.maps_completed >= last_completed &&
                          e.maps_terminal >= last_terminal,
                      at + ": map progress runs backwards");
        last_completed = e.maps_completed;
        last_terminal = e.maps_terminal;
        check.require(e.reducer_records.size() == spec.reducers,
                      at + ": reducer_records has " +
                          std::to_string(e.reducer_records.size()) +
                          " entries for " + std::to_string(spec.reducers) +
                          " reducers");
        if (e.kind == journal::Epoch::kFinal) {
            check.require(final_epoch == nullptr,
                          at + ": second kFinal epoch");
            final_epoch = &e;
        } else {
            check.require(final_epoch == nullptr,
                          at + ": epoch after the kFinal seal");
        }
        last_nonmarker = &e;
    }
    check.require(markers == loaded.resume_markers,
                  "journal: marker count disagrees with parse result");

    if (final_epoch != nullptr) {
        check.require(final_epoch == last_nonmarker,
                      "journal: kFinal epoch is not the last");
        try {
            mr::Counters c =
                mr::Counters::deserialize(final_epoch->counters_blob);
            check.require(c.maps_completed == final_epoch->maps_completed,
                          "journal: final epoch maps_completed disagrees "
                          "with its counters blob");
            std::string violation =
                c.conservationViolation(spec.reducers);
            check.require(violation.empty(),
                          "journal: final epoch counters: " + violation);
        } catch (const std::exception& e) {
            check.fail(std::string("journal: final epoch counters blob: ") +
                       e.what());
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string report_path;
    std::string trace_path;
    std::string service_path;
    std::string journal_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--report" && i + 1 < argc) {
            report_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--service-report" && i + 1 < argc) {
            service_path = argv[++i];
        } else if (arg == "--journal" && i + 1 < argc) {
            journal_path = argv[++i];
        } else {
            usage();
            return kExitBadUsage;
        }
    }
    if (report_path.empty() && trace_path.empty() &&
        service_path.empty() && journal_path.empty()) {
        usage();
        return kExitBadUsage;
    }
    Checker check;
    if (!report_path.empty()) {
        checkReport(report_path, check);
    }
    if (!trace_path.empty()) {
        checkTrace(trace_path, check);
    }
    if (!service_path.empty()) {
        checkServiceReport(service_path, check);
    }
    if (!journal_path.empty()) {
        checkJournal(journal_path, check);
    }
    if (check.failures > 0) {
        return kExitInvalid;
    }
    std::printf("obscheck OK:%s%s%s%s\n",
                report_path.empty() ? "" : (" " + report_path).c_str(),
                trace_path.empty() ? "" : (" " + trace_path).c_str(),
                service_path.empty() ? "" : (" " + service_path).c_str(),
                journal_path.empty() ? "" : (" " + journal_path).c_str());
    return kExitOk;
}
