/**
 * @file
 * approxchaos — randomized fault-plan fuzzer with an invariant oracle
 * and scenario shrinking.
 *
 * Generates seeded random scenarios over the full fault-injection space
 * (every FaultPlan key, every failure mode, 1-8 threads, sampled /
 * targeted / full inputs), runs each against the invariant oracle
 * (src/chaos/oracle.h), and on violation shrinks the scenario to a
 * minimal reproducer emitted as a ready-to-paste `approxrun` command.
 *
 *   approxchaos --seed 1 --trials 200         # default soak
 *   approxchaos --seed 1 --scenario 17        # replay one scenario
 *   approxchaos --mutate ci-widening          # prove the oracle bites
 *   approxchaos --selftest                    # every mutation caught
 *
 * Exit codes: 0 all invariants held, 1 violation found (reproducers
 * printed, and appended to --repro-out if given), 2 bad usage.
 */
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "chaos/oracle.h"
#include "chaos/scenario.h"
#include "chaos/shrink.h"
#include "common/logging.h"
#include "obs/observability.h"
#include "obs/report.h"

using namespace approxhadoop;

namespace {

struct Options
{
    uint64_t seed = 1;
    int trials = 200;
    int coverage_trials = 40;
    std::optional<uint64_t> scenario_index;
    chaos::Mutation mutation = chaos::Mutation::kNone;
    bool selftest = false;
    std::string repro_out;
    bool print_scenarios = false;
    bool verbose = false;
};

enum ExitCode { kExitClean = 0, kExitViolation = 1, kExitBadUsage = 2 };

void
usage()
{
    std::printf(
        "usage: approxchaos [options]\n"
        "\n"
        "  --seed S            scenario-family seed (default 1)\n"
        "  --trials N          random scenarios to run (default 200)\n"
        "  --coverage-trials N CI-coverage battery trials (default 40;\n"
        "                      0 disables the battery)\n"
        "  --scenario I        regenerate and check only scenario index I\n"
        "                      (bit-identical to its soak appearance)\n"
        "  --mutate NAME       deliberately break one invariant and\n"
        "                      verify the oracle flags it:\n"
        "                      ci-widening | counters | determinism |\n"
        "                      exit-code\n"
        "  --selftest          run every mutation probe (each must be\n"
        "                      caught) plus a clean probe (must pass)\n"
        "  --repro-out FILE    append shrunk reproducer commands to FILE\n"
        "  --print             print every scenario before running it\n"
        "  --verbose           framework INFO logging\n"
        "\n"
        "exit codes: 0 clean, 1 invariant violated, 2 bad usage\n");
}

bool
parseUint64(const char* text, uint64_t& out)
{
    if (text == nullptr || *text == '\0') {
        return false;
    }
    char* end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (errno != 0 || *end != '\0' || std::strchr(text, '-') != nullptr) {
        return false;
    }
    out = static_cast<uint64_t>(v);
    return true;
}

bool
parseInt(const char* text, int& out)
{
    uint64_t v = 0;
    if (!parseUint64(text, v) || v > 1000000) {
        return false;
    }
    out = static_cast<int>(v);
    return true;
}

bool
parseArgs(int argc, char** argv, Options& opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            const char* v = value();
            if (v == nullptr || !parseUint64(v, opt.seed)) {
                std::fprintf(stderr, "--seed wants a non-negative "
                                     "integer\n");
                return false;
            }
        } else if (arg == "--trials") {
            const char* v = value();
            if (v == nullptr || !parseInt(v, opt.trials)) {
                std::fprintf(stderr, "--trials wants an integer\n");
                return false;
            }
        } else if (arg == "--coverage-trials") {
            const char* v = value();
            if (v == nullptr || !parseInt(v, opt.coverage_trials)) {
                std::fprintf(stderr,
                             "--coverage-trials wants an integer\n");
                return false;
            }
        } else if (arg == "--scenario") {
            const char* v = value();
            uint64_t index = 0;
            if (v == nullptr || !parseUint64(v, index)) {
                std::fprintf(stderr, "--scenario wants an index\n");
                return false;
            }
            opt.scenario_index = index;
        } else if (arg == "--mutate") {
            const char* v = value();
            if (v == nullptr) {
                return false;
            }
            try {
                opt.mutation = chaos::parseMutation(v);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "--mutate: %s\n", e.what());
                return false;
            }
        } else if (arg == "--selftest") {
            opt.selftest = true;
        } else if (arg == "--repro-out") {
            const char* v = value();
            if (v == nullptr) {
                return false;
            }
            opt.repro_out = v;
        } else if (arg == "--print") {
            opt.print_scenarios = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

/** Shrinks a violating scenario and prints/records the reproducer. */
void
reportViolation(const Options& opt, const chaos::ChaosOracle& oracle,
                const chaos::Scenario& scenario,
                const std::vector<chaos::Violation>& violations)
{
    for (const chaos::Violation& v : violations) {
        std::printf("VIOLATION [%s] %s\n", v.invariant.c_str(),
                    v.detail.c_str());
    }
    std::printf("  scenario: %s\n", scenario.describe().c_str());

    chaos::ShrinkResult shrunk = chaos::shrinkScenario(
        scenario, [&oracle](const chaos::Scenario& candidate) {
            return !oracle.check(candidate).empty();
        });
    std::printf("  shrunk (%d oracle runs): %s\n", shrunk.evaluations,
                shrunk.scenario.describe().c_str());
    std::string repro = shrunk.scenario.approxrunCommand();
    std::printf("  minimal reproducer:\n    %s\n", repro.c_str());
    if (scenario.family_seed != 0 || scenario.index != 0) {
        std::printf("  harness replay:\n    approxchaos --seed %llu "
                    "--scenario %llu%s%s\n",
                    static_cast<unsigned long long>(scenario.family_seed),
                    static_cast<unsigned long long>(scenario.index),
                    opt.mutation != chaos::Mutation::kNone ? " --mutate "
                                                           : "",
                    opt.mutation != chaos::Mutation::kNone
                        ? chaos::toString(opt.mutation)
                        : "");
    }
    if (!opt.repro_out.empty()) {
        if (FILE* f = std::fopen(opt.repro_out.c_str(), "a")) {
            std::fprintf(f, "# [%s] %s\n%s\n",
                         violations.empty()
                             ? "?"
                             : violations.front().invariant.c_str(),
                         scenario.describe().c_str(), repro.c_str());
            std::fclose(f);
        } else {
            std::fprintf(stderr, "cannot append to %s\n",
                         opt.repro_out.c_str());
        }
        // Rerun the shrunk scenario with observability attached and save
        // the machine-readable artifacts next to the reproducer list, so
        // a CI failure ships the timeline and job report of the minimal
        // failing run, not just its command line.
        obs::Observability sink;
        mr::JobConfig config;
        chaos::RunOutcome rerun = oracle.runScenario(
            shrunk.scenario, shrunk.scenario.threads, &sink, &config);
        obs::JobReport report =
            rerun.failed
                ? obs::JobReport::fromFailure(shrunk.scenario.workload,
                                              config, rerun.error,
                                              rerun.counters, &sink)
                : obs::JobReport::build(shrunk.scenario.workload, config,
                                        rerun.result, &sink);
        std::string report_path = opt.repro_out + ".report.json";
        std::string trace_path = opt.repro_out + ".trace.json";
        auto save = [](const std::string& path, const std::string& text) {
            if (FILE* f = std::fopen(path.c_str(), "w")) {
                std::fwrite(text.data(), 1, text.size(), f);
                std::fclose(f);
                return true;
            }
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        };
        if (save(report_path, report.toJson()) &&
            save(trace_path, sink.trace.toChromeJson())) {
            std::printf("  artifacts: %s, %s\n", report_path.c_str(),
                        trace_path.c_str());
        }
    }
}

/** Checks one scenario; returns true when it violated an invariant. */
bool
checkScenario(const Options& opt, const chaos::ChaosOracle& oracle,
              const chaos::Scenario& scenario)
{
    if (opt.print_scenarios) {
        std::printf("scenario %s\n", scenario.describe().c_str());
    }
    std::vector<chaos::Violation> violations = oracle.check(scenario);
    if (violations.empty()) {
        return false;
    }
    reportViolation(opt, oracle, scenario, violations);
    return true;
}

int
runSoak(const Options& opt)
{
    chaos::ChaosOracle oracle(opt.mutation);
    chaos::ScenarioGenerator generator(opt.seed);
    int violations = 0;

    if (opt.scenario_index) {
        chaos::Scenario scenario = generator.generate(*opt.scenario_index);
        std::printf("scenario %s\n", scenario.describe().c_str());
        std::printf("  %s\n", scenario.approxrunCommand().c_str());
        if (checkScenario(opt, oracle, scenario)) {
            return kExitViolation;
        }
        std::printf("scenario %llu: all invariants held\n",
                    static_cast<unsigned long long>(*opt.scenario_index));
        return kExitClean;
    }

    if (opt.mutation != chaos::Mutation::kNone) {
        // Deterministic probe first: a scenario known to exercise the
        // code path this mutation corrupts, so `--mutate X` reliably
        // demonstrates the oracle catching the planted bug before the
        // random soak continues hunting.
        chaos::Scenario probe =
            chaos::ChaosOracle::mutationProbe(opt.mutation);
        std::printf("mutation '%s' active; probing...\n",
                    chaos::toString(opt.mutation));
        if (checkScenario(opt, oracle, probe)) {
            ++violations;
        }
    }

    for (int i = 0; i < opt.trials && violations == 0; ++i) {
        chaos::Scenario scenario =
            generator.generate(static_cast<uint64_t>(i));
        if (checkScenario(opt, oracle, scenario)) {
            ++violations;
            break;  // one shrunk reproducer is the actionable output
        }
        if ((i + 1) % 25 == 0) {
            std::printf("%d/%d scenarios clean\n", i + 1, opt.trials);
        }
    }

    if (violations == 0 && opt.coverage_trials > 0) {
        std::printf("running CI-coverage battery (%d trials)...\n",
                    opt.coverage_trials);
        std::optional<chaos::Violation> miss =
            oracle.coverageBattery(opt.seed, opt.coverage_trials);
        if (miss) {
            std::printf("VIOLATION [%s] %s\n", miss->invariant.c_str(),
                        miss->detail.c_str());
            ++violations;
        }
    }

    if (violations > 0) {
        return kExitViolation;
    }
    std::printf("clean: %d scenarios + %d coverage trials, all "
                "invariants held\n",
                opt.trials, opt.coverage_trials);
    return kExitClean;
}

/**
 * The harness-has-teeth test: a clean oracle must pass its probes and
 * every mutation must be caught on its own probe. Run by CI so a
 * refactor cannot silently neuter an invariant check.
 */
int
runSelftest(const Options& opt)
{
    static const chaos::Mutation kMutations[] = {
        chaos::Mutation::kCiWidening, chaos::Mutation::kCounters,
        chaos::Mutation::kDeterminism, chaos::Mutation::kExitCode};

    chaos::ChaosOracle clean;
    for (chaos::Mutation mutation : kMutations) {
        chaos::Scenario probe = chaos::ChaosOracle::mutationProbe(mutation);
        std::vector<chaos::Violation> baseline = clean.check(probe);
        if (!baseline.empty()) {
            std::printf("selftest FAILED: clean oracle reports a "
                        "violation on the %s probe: [%s] %s\n",
                        chaos::toString(mutation),
                        baseline.front().invariant.c_str(),
                        baseline.front().detail.c_str());
            return kExitViolation;
        }
        chaos::ChaosOracle mutated(mutation);
        std::vector<chaos::Violation> caught = mutated.check(probe);
        if (caught.empty()) {
            std::printf("selftest FAILED: mutation '%s' was NOT caught "
                        "— the matching invariant has no teeth\n",
                        chaos::toString(mutation));
            return kExitViolation;
        }
        std::printf("mutation '%s' caught: [%s] %s\n",
                    chaos::toString(mutation),
                    caught.front().invariant.c_str(),
                    caught.front().detail.c_str());
        // The shrinker must hand back a still-violating reproducer.
        chaos::ShrinkResult shrunk = chaos::shrinkScenario(
            probe, [&mutated](const chaos::Scenario& candidate) {
                return !mutated.check(candidate).empty();
            });
        if (mutated.check(shrunk.scenario).empty()) {
            std::printf("selftest FAILED: shrunk scenario for '%s' no "
                        "longer violates\n",
                        chaos::toString(mutation));
            return kExitViolation;
        }
        std::printf("  shrunk reproducer: %s\n",
                    shrunk.scenario.approxrunCommand().c_str());
    }
    (void)opt;
    std::printf("selftest OK: every mutation caught, clean probes "
                "clean\n");
    return kExitClean;
}

}  // namespace

int
main(int argc, char** argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return kExitBadUsage;
    }
    Logger::instance().setLevel(opt.verbose ? LogLevel::kInfo
                                            : LogLevel::kWarn);
    if (opt.selftest) {
        return runSelftest(opt);
    }
    return runSoak(opt);
}
