/**
 * @file
 * approxrun — command-line driver for the ApproxHadoop reproduction.
 *
 * Runs any of the paper's applications on the simulated cluster with the
 * approximation settings given on the command line, and prints the
 * result records (with confidence intervals), runtime, energy, and job
 * counters. Examples:
 *
 *   approxrun projectpop --sampling 0.01
 *   approxrun wikilength --drop 0.5 --sampling 0.1 --reps 3
 *   approxrun pagepop --target 0.01 --pilot 80:0.05
 *   approxrun dcplacement --target 0.05
 *   approxrun video --user-defined 0.5
 *   approxrun projectpop --precise --cluster atom60 --blocks 3552
 */
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/aggregation_registry.h"
#include "apps/dc_placement_app.h"
#include "apps/frame_encoder_app.h"
#include "common/logging.h"
#include "core/approx_config.h"
#include "core/approx_job.h"
#include "ft/fault_plan.h"
#include "ft/recovery_policy.h"
#include "hdfs/namenode.h"
#include "journal/journal.h"
#include "obs/observability.h"
#include "obs/report.h"
#include "sim/cluster.h"
#include "workloads/dc_placement.h"

using namespace approxhadoop;

namespace {

struct Options
{
    std::string app;
    core::ApproxConfig approx;
    bool precise = false;
    bool s3 = false;
    bool verbose = false;
    uint64_t blocks = 0;  // 0 = app default
    uint64_t items = 0;
    uint32_t reducers = 1;
    uint32_t threads = 1;
    uint64_t seed = 42;
    std::string cluster = "xeon10";
    int top = 10;
    ft::FaultPlan fault_plan;
    ft::FailureMode failure_mode = ft::FailureMode::kRetry;
    double heartbeat_interval_ms = -1.0;  // <0: keep JobConfig default
    bool heartbeat_set = false;
    double task_timeout_ms = -1.0;
    bool timeout_set = false;
    uint32_t max_attempts = 0;
    bool max_attempts_set = false;
    uint64_t checkpoint_interval = 0;
    bool checkpoint_set = false;
    bool selfcheck = false;
    std::string report_json;  // --report-json FILE ("" = off)
    std::string trace_out;    // --trace-out FILE ("" = off)
    std::string journal;      // --journal FILE ("" = off)
    std::string resume;       // --resume FILE ("" = fresh run)
    uint64_t journal_interval = 0;  // --journal-interval N
};

/**
 * Observability sink shared by every job of the invocation; created in
 * main() when --report-json or --trace-out is given, and file-scope so
 * the JobFailedError path can still emit artifacts for the partial run.
 */
std::unique_ptr<obs::Observability> g_obs;

/** Exit codes: distinguishable failure classes for scripts and CI. */
enum ExitCode {
    kExitOk = 0,
    kExitBadUsage = 2,       // unknown app/flag, malformed value, or a
                             // config rejected at job start (e.g. a fault
                             // plan naming a server outside the fleet)
    kExitJobFailed = 3,      // job aborted after retry exhaustion
    kExitSelfcheckFailed = 4 // reported CI does not cover the exact answer
};

void
usage()
{
    std::printf(
        "usage: approxrun <app> [options]\n"
        "\n"
        "apps:\n"
        "  %s\n"
        "                                 (multi-stage sampling "
        "aggregations)\n"
        "  dcplacement                    (simulated annealing, GEV)\n"
        "  video                          (user-defined approximation)\n"
        "\n"
        "options:\n"
        "  --precise             run without any approximation\n"
        "  --sampling R          input data sampling ratio in (0,1]\n"
        "  --drop R              map dropping ratio in [0,1)\n"
        "  --target X            target relative error > 0 (e.g. 0.01)\n"
        "  --confidence C        confidence level in (0,1) "
        "(default 0.95)\n"
        "  --pilot N:R           pilot wave of N maps at ratio R\n"
        "  --user-defined F      fraction of approximate map variants,\n"
        "                        in [0,1]\n"
        "  --blocks N            input blocks (= map tasks), N >= 1\n"
        "  --items N             items per block, N >= 1\n"
        "  --reducers N          reduce tasks in [1, 1024] (default 1)\n"
        "  --threads N           host threads for real map work "
        "(default 1;\n"
        "                        results are identical at any setting)\n"
        "  --cluster SPEC        xeon10 (default), atom60, or a mixed\n"
        "                        fleet in the cluster grammar, e.g.\n"
        "                        10xeon+20atom\n"
        "  --seed S              experiment seed (non-negative integer)\n"
        "  --fault-plan SPEC     inject failures; SPEC grammar:\n"
        "%s"
        "  --failure-mode M      retry | absorb | auto (default retry)\n"
        "  --max-attempts N      map attempts before the job aborts,\n"
        "                        in [1, 1000000] (default 4)\n"
        "  --checkpoint-interval N  reducer checkpoint every N chunks\n"
        "                        (0 disables; default 8)\n"
        "  --heartbeat-interval MS  task heartbeat period, simulated ms\n"
        "                        (> 0; default 1000)\n"
        "  --task-timeout MS     declare a silent task dead after MS\n"
        "                        since its last heartbeat (default 10000;\n"
        "                        <= 0: instantaneous detection)\n"
        "  --selfcheck           also run a fault-free precise reference\n"
        "                        and fail (exit 4) unless the headline\n"
        "                        key's CI covers the exact answer\n"
        "  --report-json FILE    write a machine-readable job report\n"
        "                        (JSON; schema approxhadoop-job-report/1)\n"
        "  --trace-out FILE      write a Chrome trace-event timeline\n"
        "                        (load in chrome://tracing or Perfetto)\n"
        "  --journal FILE        record a crash-consistent run journal\n"
        "                        (aggregation apps only); required for\n"
        "                        dcrash= fault plans, whose driver kills\n"
        "                        restart and resume in-process\n"
        "  --journal-interval N  also seal a journal epoch every N map\n"
        "                        completions (0 = wave boundaries only)\n"
        "  --s3                  suspend drained servers (energy mode)\n"
        "  --top K               result rows to print (default 10)\n"
        "  --verbose             framework INFO logging\n"
        "\n"
        "  --list-workloads      print the aggregation-workload\n"
        "                        registry (name, op, default shape)\n"
        "                        and exit 0\n"
        "\n"
        "  approxrun --resume FILE [--threads N] [--top K] [--verbose]\n"
        "                        [--report-json F] [--trace-out F]\n"
        "                        resume a journaled run after a driver\n"
        "                        crash; every job-configuration knob is\n"
        "                        read back from FILE and may not be\n"
        "                        overridden\n"
        "\n"
        "exit codes: 0 ok, 2 bad usage (including an unreadable,\n"
        "corrupt, or divergent journal), 3 job failed (retries\n"
        "exhausted), 4 selfcheck CI coverage failure\n",
        apps::aggregationWorkloadNames().c_str(),
        ft::FaultPlan::helpText().c_str());
}

/**
 * Strict numeric parsers: the whole token must be a finite number in
 * range, or the flag is rejected (exit 2). atof/atoi-style silent
 * garbage-to-zero would turn a typo like `--sampling 0..1` into a
 * drastically different experiment.
 */
bool
parseDouble(const char* text, double& out)
{
    if (text == nullptr || *text == '\0') {
        return false;
    }
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(text, &end);
    if (errno != 0 || end == text || *end != '\0' || !std::isfinite(v)) {
        return false;
    }
    out = v;
    return true;
}

bool
parseUint64(const char* text, uint64_t& out)
{
    if (text == nullptr || *text == '\0' ||
        std::strchr(text, '-') != nullptr) {
        return false;
    }
    char* end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0') {
        return false;
    }
    out = static_cast<uint64_t>(v);
    return true;
}

bool
parseUint32(const char* text, uint32_t lo, uint32_t hi, uint32_t& out)
{
    uint64_t v = 0;
    if (!parseUint64(text, v) || v < lo || v > hi) {
        return false;
    }
    out = static_cast<uint32_t>(v);
    return true;
}

/** Reports a malformed flag value with the expected grammar; always
 *  returns false so parse sites can `return badValue(...)`. */
bool
badValue(const std::string& flag, const char* grammar, const char* got)
{
    std::fprintf(stderr, "%s wants %s, got '%s'\n", flag.c_str(), grammar,
                 got == nullptr ? "" : got);
    return false;
}

/** `approxrun --list-workloads`: dump the aggregation registry —
 *  the same table the chaos harness and the service simulator draw
 *  their job mixes from — one row per workload, and exit 0. */
int
listWorkloads()
{
    std::printf("%-14s %-8s %8s %8s\n", "workload", "op", "blocks",
                "items");
    for (const apps::AggregationWorkload& w :
         apps::aggregationWorkloads()) {
        const char* op = "?";
        switch (w.op) {
            case core::MultiStageSamplingReducer::Op::kSum:
                op = "sum";
                break;
            case core::MultiStageSamplingReducer::Op::kCount:
                op = "count";
                break;
            case core::MultiStageSamplingReducer::Op::kAverage:
                op = "average";
                break;
            case core::MultiStageSamplingReducer::Op::kRatio:
                op = "ratio";
                break;
        }
        std::printf("%-14s %-8s %8llu %8llu\n", w.name.c_str(), op,
                    static_cast<unsigned long long>(w.default_blocks),
                    static_cast<unsigned long long>(w.default_items));
    }
    return 0;
}

bool
parseArgs(int argc, char** argv, Options& opt)
{
    if (argc < 2) {
        return false;
    }
    opt.app = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--precise") {
            opt.precise = true;
        } else if (arg == "--sampling") {
            const char* v = value();
            if (!parseDouble(v, opt.approx.sampling_ratio) ||
                opt.approx.sampling_ratio <= 0.0 ||
                opt.approx.sampling_ratio > 1.0) {
                return badValue(arg, "a ratio in (0, 1]", v);
            }
        } else if (arg == "--drop") {
            const char* v = value();
            if (!parseDouble(v, opt.approx.drop_ratio) ||
                opt.approx.drop_ratio < 0.0 ||
                opt.approx.drop_ratio >= 1.0) {
                return badValue(arg, "a ratio in [0, 1)", v);
            }
        } else if (arg == "--target") {
            const char* v = value();
            double target = 0.0;
            if (!parseDouble(v, target) || target <= 0.0) {
                return badValue(arg, "a relative error > 0", v);
            }
            opt.approx.target_relative_error = target;
        } else if (arg == "--confidence") {
            const char* v = value();
            if (!parseDouble(v, opt.approx.confidence) ||
                opt.approx.confidence <= 0.0 ||
                opt.approx.confidence >= 1.0) {
                return badValue(arg, "a confidence level in (0, 1)", v);
            }
        } else if (arg == "--pilot") {
            const char* v = value();
            const char* colon = std::strchr(v, ':');
            if (colon == nullptr) {
                return badValue(arg, "N:R (pilot maps : sampling ratio)",
                                v);
            }
            std::string maps(v, colon - v);
            if (!parseUint64(maps.c_str(), opt.approx.pilot.maps) ||
                opt.approx.pilot.maps == 0 ||
                !parseDouble(colon + 1,
                             opt.approx.pilot.sampling_ratio) ||
                opt.approx.pilot.sampling_ratio <= 0.0 ||
                opt.approx.pilot.sampling_ratio > 1.0) {
                return badValue(arg,
                                "N:R with N >= 1 maps and R in (0, 1]", v);
            }
            opt.approx.pilot.enabled = true;
        } else if (arg == "--user-defined") {
            const char* v = value();
            if (!parseDouble(v, opt.approx.user_defined_fraction) ||
                opt.approx.user_defined_fraction < 0.0 ||
                opt.approx.user_defined_fraction > 1.0) {
                return badValue(arg, "a fraction in [0, 1]", v);
            }
        } else if (arg == "--blocks") {
            const char* v = value();
            if (!parseUint64(v, opt.blocks) || opt.blocks == 0) {
                return badValue(arg, "an integer >= 1", v);
            }
        } else if (arg == "--items") {
            const char* v = value();
            if (!parseUint64(v, opt.items) || opt.items == 0) {
                return badValue(arg, "an integer >= 1", v);
            }
        } else if (arg == "--reducers") {
            const char* v = value();
            if (!parseUint32(v, 1, 1024, opt.reducers)) {
                return badValue(arg, "an integer in [1, 1024]", v);
            }
        } else if (arg == "--threads") {
            const char* v = value();
            if (!parseUint32(v, 1, 1024, opt.threads)) {
                return badValue(arg, "an integer in [1, 1024]", v);
            }
        } else if (arg == "--cluster") {
            opt.cluster = value();
            try {
                (void)sim::ClusterConfig::parse(opt.cluster);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "--cluster: %s\n", e.what());
                return false;
            }
        } else if (arg == "--seed") {
            const char* v = value();
            if (!parseUint64(v, opt.seed)) {
                return badValue(arg, "a non-negative integer", v);
            }
        } else if (arg == "--fault-plan") {
            try {
                opt.fault_plan = ft::FaultPlan::parse(value());
            } catch (const std::exception& e) {
                std::fprintf(stderr, "--fault-plan: %s\n%s", e.what(),
                             ft::FaultPlan::helpText().c_str());
                return false;
            }
        } else if (arg == "--failure-mode") {
            try {
                opt.failure_mode = ft::parseFailureMode(value());
            } catch (const std::exception& e) {
                std::fprintf(stderr, "--failure-mode: %s\n", e.what());
                return false;
            }
        } else if (arg == "--max-attempts") {
            const char* v = value();
            if (!parseUint32(v, 1, 1000000, opt.max_attempts)) {
                return badValue(arg, "an integer in [1, 1000000]", v);
            }
            opt.max_attempts_set = true;
        } else if (arg == "--checkpoint-interval") {
            const char* v = value();
            if (!parseUint64(v, opt.checkpoint_interval)) {
                return badValue(arg, "a non-negative integer", v);
            }
            opt.checkpoint_set = true;
        } else if (arg == "--heartbeat-interval") {
            const char* v = value();
            if (!parseDouble(v, opt.heartbeat_interval_ms) ||
                opt.heartbeat_interval_ms <= 0.0) {
                return badValue(arg, "a period in ms > 0", v);
            }
            opt.heartbeat_set = true;
        } else if (arg == "--task-timeout") {
            const char* v = value();
            if (!parseDouble(v, opt.task_timeout_ms)) {
                return badValue(arg, "a timeout in ms", v);
            }
            opt.timeout_set = true;
        } else if (arg == "--report-json") {
            opt.report_json = value();
            if (opt.report_json.empty()) {
                return badValue(arg, "a file path", "");
            }
        } else if (arg == "--trace-out") {
            opt.trace_out = value();
            if (opt.trace_out.empty()) {
                return badValue(arg, "a file path", "");
            }
        } else if (arg == "--journal") {
            opt.journal = value();
            if (opt.journal.empty()) {
                return badValue(arg, "a file path", "");
            }
        } else if (arg == "--journal-interval") {
            const char* v = value();
            if (!parseUint64(v, opt.journal_interval)) {
                return badValue(arg, "a non-negative integer", v);
            }
        } else if (arg == "--selfcheck") {
            opt.selfcheck = true;
        } else if (arg == "--s3") {
            opt.s3 = true;
        } else if (arg == "--top") {
            const char* v = value();
            uint32_t top = 0;
            if (!parseUint32(v, 0, 1000000, top)) {
                return badValue(arg, "a non-negative integer", v);
            }
            opt.top = static_cast<int>(top);
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

void
printResult(const Options& opt, const mr::JobResult& result)
{
    std::vector<mr::OutputRecord> rows = result.output;
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.value > b.value;
    });
    std::printf("%-24s %16s %16s\n", "key", "value", "95% CI");
    int printed = 0;
    for (const auto& r : rows) {
        if (printed++ >= opt.top) {
            break;
        }
        if (r.has_bound && std::isfinite(r.errorBound())) {
            std::printf("%-24s %16.2f %15.2f\n", r.key.c_str(), r.value,
                        r.errorBound());
        } else {
            std::printf("%-24s %16.2f %16s\n", r.key.c_str(), r.value,
                        r.has_bound ? "unbounded" : "-");
        }
    }
    if (rows.size() > static_cast<size_t>(opt.top)) {
        std::printf("... (%zu keys total)\n", rows.size());
    }
    std::printf("\nruntime %.1fs | energy %.2f Wh | %s\n", result.runtime,
                result.energy_wh, result.counters.summary().c_str());
}

void
applyCommonConfig(const Options& opt, mr::JobConfig& config)
{
    config.seed = opt.seed;
    config.cluster_spec = opt.cluster;
    config.s3_when_drained = opt.s3;
    config.num_exec_threads = opt.threads;
    config.fault_plan = opt.fault_plan;
    config.failure_mode = opt.failure_mode;
    if (opt.heartbeat_set) {
        config.heartbeat_interval_ms = opt.heartbeat_interval_ms;
    }
    if (opt.timeout_set) {
        config.task_timeout_ms = opt.task_timeout_ms;
    }
    if (opt.max_attempts_set) {
        config.recovery.max_attempts = opt.max_attempts;
    }
    if (opt.checkpoint_set) {
        config.reducer_checkpoint_interval = opt.checkpoint_interval;
    }
}

sim::ClusterConfig
clusterConfigFor(const Options& opt)
{
    return sim::ClusterConfig::parse(opt.cluster);
}

/**
 * Journal header for this invocation: everything `approxrun --resume`
 * needs to re-execute the run bit-identically. @p blocks / @p items are
 * the *resolved* input shape (workload defaults applied), so the resumed
 * run never re-consults defaults that may have changed.
 */
journal::RunSpec
makeRunSpec(const Options& opt, uint64_t blocks, uint64_t items,
            const mr::JobConfig& config)
{
    journal::RunSpec s;
    s.app = opt.app;
    s.precise = opt.precise;
    s.blocks = blocks;
    s.items = items;
    s.seed = opt.seed;
    s.reducers = opt.reducers;
    s.threads = opt.threads;
    s.cluster = opt.cluster;
    s.sampling = opt.approx.sampling_ratio;
    s.drop = opt.approx.drop_ratio;
    s.has_target = opt.approx.target_relative_error.has_value();
    s.target = opt.approx.target_relative_error.value_or(0.0);
    s.confidence = opt.approx.confidence;
    s.pilot_maps = opt.approx.pilot.enabled ? opt.approx.pilot.maps : 0;
    s.pilot_ratio = opt.approx.pilot.sampling_ratio;
    s.s3 = opt.s3;
    s.failure_mode = ft::toString(opt.failure_mode);
    s.max_attempts = config.recovery.max_attempts;
    s.checkpoint_interval = config.reducer_checkpoint_interval;
    s.heartbeat_ms = config.heartbeat_interval_ms;
    s.timeout_ms = config.task_timeout_ms;
    s.fault_plan = opt.fault_plan.spec();
    s.endgame_left_percent = config.endgame_left_percent;
    s.map_interval = opt.journal_interval;
    return s;
}

/** Inverse of makeRunSpec: reconstructs the full CLI configuration of
 *  the journaled run. @throws std::invalid_argument on a header naming
 *  an unknown failure mode or fault-plan key. */
Options
optionsFromSpec(const journal::RunSpec& spec)
{
    Options opt;
    opt.app = spec.app;
    opt.precise = spec.precise;
    opt.blocks = spec.blocks;
    opt.items = spec.items;
    opt.seed = spec.seed;
    opt.reducers = spec.reducers;
    opt.threads = spec.threads;
    opt.cluster = spec.cluster;
    opt.approx.sampling_ratio = spec.sampling;
    opt.approx.drop_ratio = spec.drop;
    if (spec.has_target) {
        opt.approx.target_relative_error = spec.target;
    }
    opt.approx.confidence = spec.confidence;
    if (spec.pilot_maps > 0) {
        opt.approx.pilot.enabled = true;
        opt.approx.pilot.maps = spec.pilot_maps;
        opt.approx.pilot.sampling_ratio = spec.pilot_ratio;
    }
    opt.s3 = spec.s3;
    opt.failure_mode = ft::parseFailureMode(spec.failure_mode);
    opt.max_attempts = spec.max_attempts;
    opt.max_attempts_set = true;
    opt.checkpoint_interval = spec.checkpoint_interval;
    opt.checkpoint_set = true;
    opt.heartbeat_interval_ms = spec.heartbeat_ms;
    opt.heartbeat_set = true;
    opt.task_timeout_ms = spec.timeout_ms;
    opt.timeout_set = true;
    if (!spec.fault_plan.empty()) {
        opt.fault_plan = ft::FaultPlan::parse(spec.fault_plan);
    }
    opt.journal_interval = spec.map_interval;
    return opt;
}

bool
writeTextFile(const std::string& path, const std::string& text)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                     std::strerror(errno));
        return false;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

/** Writes --report-json and --trace-out artifacts (whichever are set). */
void
emitObsArtifacts(const Options& opt, const obs::JobReport& report)
{
    if (!opt.report_json.empty()) {
        writeTextFile(opt.report_json, report.toJson());
    }
    if (!opt.trace_out.empty() && g_obs != nullptr) {
        writeTextFile(opt.trace_out, g_obs->trace.toChromeJson());
    }
}

/**
 * Validates the approximate result against a fault-free precise run of
 * the same job: the headline key (largest predicted absolute error, the
 * key the paper reports) must have a confidence interval that covers the
 * exact answer. CI uses this to assert end-to-end statistical soundness
 * under fault injection.
 */
int
selfcheckAgainst(const mr::JobResult& approx, const mr::JobResult& precise)
{
    const mr::OutputRecord* worst = nullptr;
    for (const mr::OutputRecord& r : approx.output) {
        if (!r.has_bound || !std::isfinite(r.errorBound())) {
            continue;
        }
        if (worst == nullptr || r.errorBound() > worst->errorBound()) {
            worst = &r;
        }
    }
    if (worst == nullptr) {
        std::fprintf(stderr,
                     "selfcheck: no key carries a finite error bound\n");
        return kExitSelfcheckFailed;
    }
    const mr::OutputRecord* exact = precise.find(worst->key);
    if (exact == nullptr) {
        std::fprintf(stderr,
                     "selfcheck: headline key '%s' missing from the "
                     "precise reference\n",
                     worst->key.c_str());
        return kExitSelfcheckFailed;
    }
    double deviation = std::fabs(worst->value - exact->value);
    if (deviation > worst->errorBound()) {
        std::fprintf(stderr,
                     "selfcheck FAILED: key '%s' estimate %.4f +/- %.4f "
                     "does not cover exact %.4f\n",
                     worst->key.c_str(), worst->value, worst->errorBound(),
                     exact->value);
        return kExitSelfcheckFailed;
    }
    std::printf("selfcheck OK: key '%s' estimate %.4f +/- %.4f covers "
                "exact %.4f\n",
                worst->key.c_str(), worst->value, worst->errorBound(),
                exact->value);
    return kExitOk;
}

/**
 * Runs one registry aggregation workload. All eleven aggregation apps
 * dispatch through the registry (src/apps/aggregation_registry.h), the
 * same table the chaos harness fuzzes, so the CLI and the fuzzer can
 * never disagree about what a workload means.
 */
int
runAggregationWorkload(const Options& opt,
                       const apps::AggregationWorkload& workload)
{
    uint64_t blocks = opt.blocks ? opt.blocks : workload.default_blocks;
    uint64_t items = opt.items ? opt.items : workload.default_items;

    // Crash-consistent journaling (src/journal/): record mode seals the
    // run spec up front; resume mode reloads the sealed prefix and
    // verifies the re-executed run against it epoch by epoch. A dcrash=
    // fault unwinds the attempt with DriverKilledError; the loop below
    // then resumes from the journal exactly like a freshly launched
    // `approxrun --resume FILE` after a real process kill.
    std::string journal_path =
        !opt.resume.empty() ? opt.resume : opt.journal;
    std::unique_ptr<journal::JobJournal> jj;
    if (!opt.resume.empty()) {
        jj = journal::JobJournal::resumeFile(journal_path);
    } else if (!opt.journal.empty()) {
        mr::JobConfig probe = workload.job_config(items, opt.reducers);
        applyCommonConfig(opt, probe);
        jj = journal::JobJournal::create(
            journal_path, makeRunSpec(opt, blocks, items, probe));
    }

    for (;;) {
        std::unique_ptr<hdfs::BlockDataset> data =
            workload.make_dataset(blocks, items, opt.seed);
        mr::JobConfig config = workload.job_config(items, opt.reducers);
        applyCommonConfig(opt, config);
        if (jj != nullptr) {
            config.driver_crash_skip = jj->resumeCount();
            config.journal_map_interval = jj->spec().map_interval;
        }
        sim::Cluster cluster(clusterConfigFor(opt));
        hdfs::NameNode nn(cluster.numServers(), 3, opt.seed);
        core::ApproxJobRunner runner(cluster, *data, nn);
        runner.setObservability(g_obs.get());
        runner.setEpochSink(jj.get());
        mr::JobResult result;
        try {
            result = opt.precise
                         ? runner.runPrecise(
                               config, workload.mapper_factory(),
                               workload.precise_reducer_factory())
                         : runner.runAggregation(config, opt.approx,
                                                 workload.mapper_factory(),
                                                 workload.op);
        } catch (const journal::DriverKilledError& e) {
            std::fprintf(stderr, "%s; resuming from journal '%s'\n",
                         e.what(), journal_path.c_str());
            // Close the dead incarnation's journal handle before
            // re-reading the file, and drop its partial observability:
            // resume re-executes from the start, so the next attempt
            // produces the complete trace on its own.
            jj.reset();
            jj = journal::JobJournal::resumeFile(journal_path);
            if (g_obs != nullptr) {
                g_obs = std::make_unique<obs::Observability>();
            }
            continue;
        }
        printResult(opt, result);
        if (g_obs != nullptr) {
            emitObsArtifacts(opt, obs::JobReport::build(opt.app, config,
                                                        result,
                                                        g_obs.get()));
        }
        if (opt.selfcheck && !opt.precise) {
            mr::JobResult precise = apps::runPreciseReference(
                workload, *data, config, clusterConfigFor(opt), opt.seed);
            return selfcheckAgainst(result, precise);
        }
        return kExitOk;
    }
}

int
runApp(const Options& opt)
{
    // --- Multi-stage-sampling aggregations (registry dispatch) --------------
    if (const apps::AggregationWorkload* workload =
            apps::findAggregationWorkload(opt.app)) {
        return runAggregationWorkload(opt, *workload);
    }

    // Journaling covers the registry aggregation workloads only: those
    // are the jobs the chaos harness kills and resumes, and the only
    // ones whose full configuration round-trips through a RunSpec.
    if (!opt.journal.empty() || !opt.resume.empty()) {
        std::fprintf(stderr,
                     "--journal/--resume support the registry aggregation "
                     "workloads only, not '%s'\n",
                     opt.app.c_str());
        return kExitBadUsage;
    }

    // --- DC Placement (GEV) ---------------------------------------------------
    if (opt.app == "dcplacement") {
        workloads::DCPlacementParams pp;
        pp.sa_iterations = 400;
        pp.seed = opt.seed;
        auto problem =
            std::make_shared<const workloads::DCPlacementProblem>(pp);
        uint64_t maps = opt.blocks ? opt.blocks : 80;
        uint64_t seeds_per_map = opt.items ? opt.items : 2;
        auto seeds =
            workloads::makeDCPlacementSeeds(maps, seeds_per_map, opt.seed);
        sim::ClusterConfig cc = clusterConfigFor(opt);
        cc.map_slots_per_server = 4;
        sim::Cluster cluster(cc);
        hdfs::NameNode nn(cluster.numServers(), 3, opt.seed);
        core::ApproxJobRunner runner(cluster, *seeds, nn);
        runner.setObservability(g_obs.get());
        mr::JobConfig config = apps::DCPlacementApp::jobConfig(
            seeds_per_map, opt.reducers);
        applyCommonConfig(opt, config);
        mr::JobResult result =
            opt.precise
                ? runner.runPrecise(
                      config, apps::DCPlacementApp::mapperFactory(problem),
                      apps::DCPlacementApp::preciseReducerFactory())
                : runner.runExtreme(
                      config, opt.approx,
                      apps::DCPlacementApp::mapperFactory(problem), true);
        printResult(opt, result);
        if (g_obs != nullptr) {
            emitObsArtifacts(opt, obs::JobReport::build(
                                      opt.app, config, result, g_obs.get()));
        }
        return 0;
    }

    // --- Video encoding (user-defined approximation) --------------------------
    if (opt.app == "video") {
        uint64_t blocks = opt.blocks ? opt.blocks : 160;
        uint64_t frames = opt.items ? opt.items : 120;
        auto data = apps::FrameEncoderApp::makeFrames(blocks, frames,
                                                      opt.seed);
        sim::Cluster cluster(clusterConfigFor(opt));
        hdfs::NameNode nn(cluster.numServers(), 3, opt.seed);
        core::ApproxJobRunner runner(cluster, *data, nn);
        runner.setObservability(g_obs.get());
        mr::JobConfig config =
            apps::FrameEncoderApp::jobConfig(frames, opt.reducers);
        applyCommonConfig(opt, config);
        mr::JobResult result = runner.runUserDefined(
            config, opt.approx, apps::FrameEncoderApp::mapperFactory(),
            apps::FrameEncoderApp::reducerFactory());
        printResult(opt, result);
        if (g_obs != nullptr) {
            emitObsArtifacts(opt, obs::JobReport::build(
                                      opt.app, config, result, g_obs.get()));
        }
        return 0;
    }

    std::fprintf(stderr,
                 "unknown app '%s'; valid apps:\n  %s dcplacement video\n",
                 opt.app.c_str(),
                 apps::aggregationWorkloadNames().c_str());
    return kExitBadUsage;
}

/** Shared tail of main(): logging, observability, dispatch, and the
 *  failure-class exit-code mapping. */
int
runWithOptions(const Options& opt)
{
    Logger::instance().setLevel(opt.verbose ? LogLevel::kInfo
                                            : LogLevel::kWarn);
    if (!opt.report_json.empty() || !opt.trace_out.empty()) {
        g_obs = std::make_unique<obs::Observability>();
    }
    try {
        return runApp(opt);
    } catch (const mr::JobFailedError& e) {
        // Retry exhaustion under FailureMode::kRetry: report what faults
        // led up to the abort, with a distinct exit code for scripts.
        std::fprintf(stderr, "job failed: %s\n", e.what());
        std::fprintf(stderr, "fault summary: %s\n",
                     e.counters.faultSummary().c_str());
        if (g_obs != nullptr) {
            // The JobConfig that failed is out of scope here; rebuild the
            // determinism-relevant knobs from the CLI options so the
            // failed-run report still records them.
            mr::JobConfig config;
            config.name = opt.app;
            config.num_reducers = opt.reducers;
            applyCommonConfig(opt, config);
            emitObsArtifacts(opt,
                             obs::JobReport::fromFailure(
                                 opt.app, config, e.what(), e.counters,
                                 g_obs.get()));
        }
        return kExitJobFailed;
    } catch (const journal::JournalError& e) {
        // Unreadable/corrupt journal, or a resumed run diverging from
        // its sealed prefix: bad input, never a crash.
        std::fprintf(stderr, "journal error: %s\n", e.what());
        return kExitBadUsage;
    } catch (const std::invalid_argument& e) {
        // Config rejected at job start (e.g. `server=ID` outside the
        // fleet): a usage error, not a runtime failure.
        std::fprintf(stderr, "config error: %s\n", e.what());
        return kExitBadUsage;
    }
}

/**
 * `approxrun --resume FILE [...]`: reconstruct the full configuration
 * from the journal header, then run it through the normal dispatch. Only
 * presentation knobs (and --threads, which never changes results) may be
 * given — everything that shapes the job is journaled and authoritative.
 */
int
resumeMain(int argc, char** argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "missing value for --resume\n");
        usage();
        return kExitBadUsage;
    }
    Options opt;
    try {
        journal::LoadedJournal loaded =
            journal::parseJournal(journal::readJournalFile(argv[2]));
        opt = optionsFromSpec(loaded.spec);
    } catch (const journal::JournalError& e) {
        std::fprintf(stderr, "journal error: %s\n", e.what());
        return kExitBadUsage;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "journal error: header invalid: %s\n",
                     e.what());
        return kExitBadUsage;
    }
    opt.resume = argv[2];
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(kExitBadUsage);
            }
            return argv[++i];
        };
        if (arg == "--threads") {
            const char* v = value();
            if (!parseUint32(v, 1, 1024, opt.threads)) {
                badValue(arg, "an integer in [1, 1024]", v);
                return kExitBadUsage;
            }
        } else if (arg == "--top") {
            const char* v = value();
            uint32_t top = 0;
            if (!parseUint32(v, 0, 1000000, top)) {
                badValue(arg, "a non-negative integer", v);
                return kExitBadUsage;
            }
            opt.top = static_cast<int>(top);
        } else if (arg == "--report-json") {
            opt.report_json = value();
        } else if (arg == "--trace-out") {
            opt.trace_out = value();
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            std::fprintf(stderr,
                         "%s cannot be combined with --resume: the job "
                         "configuration is read back from the journal\n",
                         arg.c_str());
            return kExitBadUsage;
        }
    }
    return runWithOptions(opt);
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc >= 2 && std::string(argv[1]) == "--list-workloads") {
        return listWorkloads();
    }
    if (argc >= 2 && std::string(argv[1]) == "--resume") {
        return resumeMain(argc, argv);
    }
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return kExitBadUsage;
    }
    if (opt.fault_plan.hasDriverCrash() && opt.journal.empty()) {
        std::fprintf(stderr,
                     "--fault-plan dcrash= requires --journal FILE: "
                     "driver-crash recovery resumes from the journal\n");
        return kExitBadUsage;
    }
    if (opt.journal_interval != 0 && opt.journal.empty()) {
        std::fprintf(stderr, "--journal-interval requires --journal\n");
        return kExitBadUsage;
    }
    return runWithOptions(opt);
}
