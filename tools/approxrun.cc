/**
 * @file
 * approxrun — command-line driver for the ApproxHadoop reproduction.
 *
 * Runs any of the paper's applications on the simulated cluster with the
 * approximation settings given on the command line, and prints the
 * result records (with confidence intervals), runtime, energy, and job
 * counters. Examples:
 *
 *   approxrun projectpop --sampling 0.01
 *   approxrun wikilength --drop 0.5 --sampling 0.1 --reps 3
 *   approxrun pagepop --target 0.01 --pilot 80:0.05
 *   approxrun dcplacement --target 0.05
 *   approxrun video --user-defined 0.5
 *   approxrun projectpop --precise --cluster atom60 --blocks 3552
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/dc_placement_app.h"
#include "apps/frame_encoder_app.h"
#include "apps/log_apps.h"
#include "apps/webserver_apps.h"
#include "apps/wiki_apps.h"
#include "common/logging.h"
#include "core/approx_config.h"
#include "core/approx_job.h"
#include "ft/fault_plan.h"
#include "ft/recovery_policy.h"
#include "hdfs/namenode.h"
#include "sim/cluster.h"
#include "workloads/access_log.h"
#include "workloads/dc_placement.h"
#include "workloads/webserver_log.h"
#include "workloads/wiki_dump.h"

using namespace approxhadoop;

namespace {

struct Options
{
    std::string app;
    core::ApproxConfig approx;
    bool precise = false;
    bool s3 = false;
    bool verbose = false;
    uint64_t blocks = 0;  // 0 = app default
    uint64_t items = 0;
    uint32_t reducers = 1;
    uint32_t threads = 1;
    uint64_t seed = 42;
    std::string cluster = "xeon10";
    int top = 10;
    ft::FaultPlan fault_plan;
    ft::FailureMode failure_mode = ft::FailureMode::kRetry;
    double heartbeat_interval_ms = -1.0;  // <0: keep JobConfig default
    bool heartbeat_set = false;
    double task_timeout_ms = -1.0;
    bool timeout_set = false;
    bool selfcheck = false;
};

/** Exit codes: distinguishable failure classes for scripts and CI. */
enum ExitCode {
    kExitOk = 0,
    kExitBadUsage = 2,       // unknown app/flag or malformed value
    kExitJobFailed = 3,      // job aborted after retry exhaustion
    kExitSelfcheckFailed = 4 // reported CI does not cover the exact answer
};

void
usage()
{
    std::printf(
        "usage: approxrun <app> [options]\n"
        "\n"
        "apps:\n"
        "  wikilength wikipagerank        (Wikipedia dump)\n"
        "  projectpop pagepop pagetraffic (Wikipedia access log)\n"
        "  webrate attacks totalsize requestsize clients browsers\n"
        "                                 (web-server log)\n"
        "  dcplacement                    (simulated annealing, GEV)\n"
        "  video                          (user-defined approximation)\n"
        "\n"
        "options:\n"
        "  --precise             run without any approximation\n"
        "  --sampling R          input data sampling ratio in (0,1]\n"
        "  --drop R              map dropping ratio in [0,1)\n"
        "  --target X            target relative error (e.g. 0.01)\n"
        "  --confidence C        confidence level (default 0.95)\n"
        "  --pilot N:R           pilot wave of N maps at ratio R\n"
        "  --user-defined F      fraction of approximate map variants\n"
        "  --blocks N            input blocks (= map tasks)\n"
        "  --items N             items per block\n"
        "  --reducers N          reduce tasks (default 1)\n"
        "  --threads N           host threads for real map work "
        "(default 1;\n"
        "                        results are identical at any setting)\n"
        "  --cluster NAME        xeon10 (default) or atom60\n"
        "  --seed S              experiment seed\n"
        "  --fault-plan SPEC     inject failures; SPEC is comma-separated\n"
        "                        crash=P, straggler=P:F[:S], corrupt=P,\n"
        "                        badrec=P, rcrash=P, server=ID@T[+D],\n"
        "                        seed=S\n"
        "  --failure-mode M      retry | absorb | auto (default retry)\n"
        "  --heartbeat-interval MS  task heartbeat period, simulated ms\n"
        "                        (default 1000)\n"
        "  --task-timeout MS     declare a silent task dead after MS\n"
        "                        since its last heartbeat (default 10000;\n"
        "                        <= 0: instantaneous detection)\n"
        "  --selfcheck           also run a fault-free precise reference\n"
        "                        and fail (exit 4) unless the headline\n"
        "                        key's CI covers the exact answer\n"
        "  --s3                  suspend drained servers (energy mode)\n"
        "  --top K               result rows to print (default 10)\n"
        "  --verbose             framework INFO logging\n"
        "\n"
        "exit codes: 0 ok, 2 bad usage, 3 job failed (retries\n"
        "exhausted), 4 selfcheck CI coverage failure\n");
}

bool
parseArgs(int argc, char** argv, Options& opt)
{
    if (argc < 2) {
        return false;
    }
    opt.app = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--precise") {
            opt.precise = true;
        } else if (arg == "--sampling") {
            opt.approx.sampling_ratio = std::atof(value());
        } else if (arg == "--drop") {
            opt.approx.drop_ratio = std::atof(value());
        } else if (arg == "--target") {
            opt.approx.target_relative_error = std::atof(value());
        } else if (arg == "--confidence") {
            opt.approx.confidence = std::atof(value());
        } else if (arg == "--pilot") {
            const char* v = value();
            const char* colon = std::strchr(v, ':');
            if (colon == nullptr) {
                std::fprintf(stderr, "--pilot wants N:R\n");
                return false;
            }
            opt.approx.pilot.enabled = true;
            opt.approx.pilot.maps = std::strtoull(v, nullptr, 10);
            opt.approx.pilot.sampling_ratio = std::atof(colon + 1);
        } else if (arg == "--user-defined") {
            opt.approx.user_defined_fraction = std::atof(value());
        } else if (arg == "--blocks") {
            opt.blocks = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--items") {
            opt.items = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--reducers") {
            opt.reducers = static_cast<uint32_t>(std::atoi(value()));
        } else if (arg == "--threads") {
            int threads = std::atoi(value());
            if (threads < 1 || threads > 1024) {
                std::fprintf(stderr,
                             "--threads wants a value in [1, 1024]\n");
                return false;
            }
            opt.threads = static_cast<uint32_t>(threads);
        } else if (arg == "--cluster") {
            opt.cluster = value();
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--fault-plan") {
            try {
                opt.fault_plan = ft::FaultPlan::parse(value());
            } catch (const std::exception& e) {
                std::fprintf(stderr, "--fault-plan: %s\n", e.what());
                return false;
            }
        } else if (arg == "--failure-mode") {
            try {
                opt.failure_mode = ft::parseFailureMode(value());
            } catch (const std::exception& e) {
                std::fprintf(stderr, "--failure-mode: %s\n", e.what());
                return false;
            }
        } else if (arg == "--heartbeat-interval") {
            opt.heartbeat_interval_ms = std::atof(value());
            opt.heartbeat_set = true;
        } else if (arg == "--task-timeout") {
            opt.task_timeout_ms = std::atof(value());
            opt.timeout_set = true;
        } else if (arg == "--selfcheck") {
            opt.selfcheck = true;
        } else if (arg == "--s3") {
            opt.s3 = true;
        } else if (arg == "--top") {
            opt.top = std::atoi(value());
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

void
printResult(const Options& opt, const mr::JobResult& result)
{
    std::vector<mr::OutputRecord> rows = result.output;
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.value > b.value;
    });
    std::printf("%-24s %16s %16s\n", "key", "value", "95% CI");
    int printed = 0;
    for (const auto& r : rows) {
        if (printed++ >= opt.top) {
            break;
        }
        if (r.has_bound && std::isfinite(r.errorBound())) {
            std::printf("%-24s %16.2f %15.2f\n", r.key.c_str(), r.value,
                        r.errorBound());
        } else {
            std::printf("%-24s %16.2f %16s\n", r.key.c_str(), r.value,
                        r.has_bound ? "unbounded" : "-");
        }
    }
    if (rows.size() > static_cast<size_t>(opt.top)) {
        std::printf("... (%zu keys total)\n", rows.size());
    }
    std::printf("\nruntime %.1fs | energy %.2f Wh | %s\n", result.runtime,
                result.energy_wh, result.counters.summary().c_str());
}

void
applyCommonConfig(const Options& opt, mr::JobConfig& config)
{
    config.seed = opt.seed;
    config.s3_when_drained = opt.s3;
    config.num_exec_threads = opt.threads;
    config.fault_plan = opt.fault_plan;
    config.failure_mode = opt.failure_mode;
    if (opt.heartbeat_set) {
        config.heartbeat_interval_ms = opt.heartbeat_interval_ms;
    }
    if (opt.timeout_set) {
        config.task_timeout_ms = opt.task_timeout_ms;
    }
}

sim::ClusterConfig
clusterConfigFor(const Options& opt)
{
    return opt.cluster == "atom60" ? sim::ClusterConfig::atom60()
                                   : sim::ClusterConfig::xeon10();
}

/**
 * Validates the approximate result against a fault-free precise run of
 * the same job: the headline key (largest predicted absolute error, the
 * key the paper reports) must have a confidence interval that covers the
 * exact answer. CI uses this to assert end-to-end statistical soundness
 * under fault injection.
 */
int
selfcheckAgainst(const mr::JobResult& approx, const mr::JobResult& precise)
{
    const mr::OutputRecord* worst = nullptr;
    for (const mr::OutputRecord& r : approx.output) {
        if (!r.has_bound || !std::isfinite(r.errorBound())) {
            continue;
        }
        if (worst == nullptr || r.errorBound() > worst->errorBound()) {
            worst = &r;
        }
    }
    if (worst == nullptr) {
        std::fprintf(stderr,
                     "selfcheck: no key carries a finite error bound\n");
        return kExitSelfcheckFailed;
    }
    const mr::OutputRecord* exact = precise.find(worst->key);
    if (exact == nullptr) {
        std::fprintf(stderr,
                     "selfcheck: headline key '%s' missing from the "
                     "precise reference\n",
                     worst->key.c_str());
        return kExitSelfcheckFailed;
    }
    double deviation = std::fabs(worst->value - exact->value);
    if (deviation > worst->errorBound()) {
        std::fprintf(stderr,
                     "selfcheck FAILED: key '%s' estimate %.4f +/- %.4f "
                     "does not cover exact %.4f\n",
                     worst->key.c_str(), worst->value, worst->errorBound(),
                     exact->value);
        return kExitSelfcheckFailed;
    }
    std::printf("selfcheck OK: key '%s' estimate %.4f +/- %.4f covers "
                "exact %.4f\n",
                worst->key.c_str(), worst->value, worst->errorBound(),
                exact->value);
    return kExitOk;
}

template <typename App>
int
runAggregationApp(const Options& opt, const hdfs::BlockDataset& data,
                  mr::JobConfig config)
{
    config.num_reducers = opt.reducers;
    applyCommonConfig(opt, config);
    sim::Cluster cluster(clusterConfigFor(opt));
    hdfs::NameNode nn(cluster.numServers(), 3, opt.seed);
    core::ApproxJobRunner runner(cluster, data, nn);
    mr::JobResult result =
        opt.precise ? runner.runPrecise(config, App::mapperFactory(),
                                        App::preciseReducerFactory())
                    : runner.runAggregation(config, opt.approx,
                                            App::mapperFactory(), App::kOp);
    printResult(opt, result);
    if (opt.selfcheck && !opt.precise) {
        // Fault-free precise reference on a fresh cluster.
        mr::JobConfig ref_config = config;
        ref_config.fault_plan = ft::FaultPlan{};
        ref_config.failure_mode = ft::FailureMode::kRetry;
        sim::Cluster ref_cluster(clusterConfigFor(opt));
        hdfs::NameNode ref_nn(ref_cluster.numServers(), 3, opt.seed);
        core::ApproxJobRunner ref_runner(ref_cluster, data, ref_nn);
        mr::JobResult precise = ref_runner.runPrecise(
            ref_config, App::mapperFactory(), App::preciseReducerFactory());
        return selfcheckAgainst(result, precise);
    }
    return kExitOk;
}

int
runApp(const Options& opt)
{
    // --- Wikipedia dump apps ------------------------------------------------
    if (opt.app == "wikilength" || opt.app == "wikipagerank") {
        workloads::WikiDumpParams params;
        params.num_blocks = opt.blocks ? opt.blocks : 161;
        params.articles_per_block = opt.items ? opt.items : 400;
        params.seed = opt.seed;
        auto dump = workloads::makeWikiDump(params);
        if (opt.app == "wikilength") {
            return runAggregationApp<apps::WikiLength>(
                opt, *dump,
                apps::WikiLength::jobConfig(params.articles_per_block));
        }
        return runAggregationApp<apps::WikiPageRank>(
            opt, *dump,
            apps::WikiPageRank::jobConfig(params.articles_per_block));
    }

    // --- Wikipedia access-log apps ------------------------------------------
    if (opt.app == "projectpop" || opt.app == "pagepop" ||
        opt.app == "pagetraffic") {
        workloads::AccessLogParams params;
        params.num_blocks = opt.blocks ? opt.blocks : 744;
        params.entries_per_block = opt.items ? opt.items : 400;
        params.seed = opt.seed;
        auto log = workloads::makeAccessLog(params);
        mr::JobConfig config = apps::logProcessingConfig(
            opt.app, params.entries_per_block);
        if (opt.app == "projectpop") {
            return runAggregationApp<apps::ProjectPopularity>(opt, *log,
                                                              config);
        }
        if (opt.app == "pagepop") {
            return runAggregationApp<apps::PagePopularity>(opt, *log,
                                                           config);
        }
        return runAggregationApp<apps::PageTraffic>(opt, *log, config);
    }

    // --- Web-server log apps -------------------------------------------------
    if (opt.app == "webrate" || opt.app == "attacks" ||
        opt.app == "totalsize" || opt.app == "requestsize" ||
        opt.app == "clients" || opt.app == "browsers") {
        workloads::WebServerLogParams params;
        params.num_weeks = opt.blocks ? opt.blocks : 80;
        params.entries_per_week = opt.items ? opt.items : 2000;
        params.seed = opt.seed;
        auto log = workloads::makeWebServerLog(params);
        mr::JobConfig config =
            apps::webServerLogConfig(opt.app, params.entries_per_week);
        if (opt.app == "webrate") {
            return runAggregationApp<apps::WebRequestRate>(opt, *log,
                                                           config);
        }
        if (opt.app == "attacks") {
            return runAggregationApp<apps::AttackFrequencies>(opt, *log,
                                                              config);
        }
        if (opt.app == "totalsize") {
            return runAggregationApp<apps::TotalSize>(opt, *log, config);
        }
        if (opt.app == "requestsize") {
            return runAggregationApp<apps::RequestSize>(opt, *log, config);
        }
        if (opt.app == "clients") {
            return runAggregationApp<apps::Clients>(opt, *log, config);
        }
        return runAggregationApp<apps::ClientBrowser>(opt, *log, config);
    }

    // --- DC Placement (GEV) ---------------------------------------------------
    if (opt.app == "dcplacement") {
        workloads::DCPlacementParams pp;
        pp.sa_iterations = 400;
        pp.seed = opt.seed;
        auto problem =
            std::make_shared<const workloads::DCPlacementProblem>(pp);
        uint64_t maps = opt.blocks ? opt.blocks : 80;
        uint64_t seeds_per_map = opt.items ? opt.items : 2;
        auto seeds =
            workloads::makeDCPlacementSeeds(maps, seeds_per_map, opt.seed);
        sim::ClusterConfig cc = opt.cluster == "atom60"
                                    ? sim::ClusterConfig::atom60()
                                    : sim::ClusterConfig::xeon10();
        cc.map_slots_per_server = 4;
        sim::Cluster cluster(cc);
        hdfs::NameNode nn(cluster.numServers(), 3, opt.seed);
        core::ApproxJobRunner runner(cluster, *seeds, nn);
        mr::JobConfig config = apps::DCPlacementApp::jobConfig(
            seeds_per_map, opt.reducers);
        applyCommonConfig(opt, config);
        mr::JobResult result =
            opt.precise
                ? runner.runPrecise(
                      config, apps::DCPlacementApp::mapperFactory(problem),
                      apps::DCPlacementApp::preciseReducerFactory())
                : runner.runExtreme(
                      config, opt.approx,
                      apps::DCPlacementApp::mapperFactory(problem), true);
        printResult(opt, result);
        return 0;
    }

    // --- Video encoding (user-defined approximation) --------------------------
    if (opt.app == "video") {
        uint64_t blocks = opt.blocks ? opt.blocks : 160;
        uint64_t frames = opt.items ? opt.items : 120;
        auto data = apps::FrameEncoderApp::makeFrames(blocks, frames,
                                                      opt.seed);
        sim::Cluster cluster(opt.cluster == "atom60"
                                 ? sim::ClusterConfig::atom60()
                                 : sim::ClusterConfig::xeon10());
        hdfs::NameNode nn(cluster.numServers(), 3, opt.seed);
        core::ApproxJobRunner runner(cluster, *data, nn);
        mr::JobConfig config =
            apps::FrameEncoderApp::jobConfig(frames, opt.reducers);
        applyCommonConfig(opt, config);
        mr::JobResult result = runner.runUserDefined(
            config, opt.approx, apps::FrameEncoderApp::mapperFactory(),
            apps::FrameEncoderApp::reducerFactory());
        printResult(opt, result);
        return 0;
    }

    std::fprintf(stderr, "unknown app '%s'\n\n", opt.app.c_str());
    usage();
    return kExitBadUsage;
}

}  // namespace

int
main(int argc, char** argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return kExitBadUsage;
    }
    Logger::instance().setLevel(opt.verbose ? LogLevel::kInfo
                                            : LogLevel::kWarn);
    try {
        return runApp(opt);
    } catch (const mr::JobFailedError& e) {
        // Retry exhaustion under FailureMode::kRetry: report what faults
        // led up to the abort, with a distinct exit code for scripts.
        std::fprintf(stderr, "job failed: %s\n", e.what());
        std::fprintf(stderr, "fault summary: %s\n",
                     e.counters.faultSummary().c_str());
        return kExitJobFailed;
    }
}
