/**
 * @file
 * Compares a fresh BENCH_*.json report against a committed baseline and
 * fails CI on a throughput regression — the perf-gate of the batched
 * map-side execution work.
 *
 * Usage:
 *   benchdiff [--threshold <frac>] <baseline.json> <candidate.json>
 *
 * Both files must be schema "approxhadoop-bench/1" reports for the same
 * benchmark with the same repetition count. Metric names carry the
 * comparison semantics (see bench/bench_util.h BenchReport):
 *
 *   - "*_per_sec"  throughput: candidate must be >= baseline * (1 -
 *                  threshold); higher is always fine.
 *   - "sim_*"      simulated result: must equal the baseline exactly —
 *                  a speedup that changes simulated output is a
 *                  correctness bug, not a perf regression.
 *   - otherwise    informational: printed, never gated.
 *
 * Exit codes: 0 pass, 1 regression (or sim mismatch), 2 usage/parse
 * error.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

using approxhadoop::obs::JsonValue;
using approxhadoop::obs::parseJson;

namespace {

constexpr const char* kSchema = "approxhadoop-bench/1";

bool
readFile(const char* path, std::string& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "benchdiff: cannot read %s\n", path);
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
loadReport(const char* path, JsonValue& out)
{
    std::string text;
    if (!readFile(path, text)) {
        return false;
    }
    std::string error;
    auto parsed = parseJson(text, &error);
    if (!parsed.has_value()) {
        std::fprintf(stderr, "benchdiff: %s: %s\n", path, error.c_str());
        return false;
    }
    out = std::move(*parsed);
    if (!out.isObject() || !out.at("schema").isString() ||
        out.at("schema").string != kSchema) {
        std::fprintf(stderr, "benchdiff: %s: not a %s report\n", path,
                     kSchema);
        return false;
    }
    if (!out.at("bench").isString() || !out.at("reps").isNumber() ||
        !out.at("metrics").isObject()) {
        std::fprintf(stderr, "benchdiff: %s: missing bench/reps/metrics\n",
                     path);
        return false;
    }
    return true;
}

bool
endsWith(const std::string& s, const char* suffix)
{
    size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool
startsWith(const std::string& s, const char* prefix)
{
    return s.rfind(prefix, 0) == 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    double threshold = 0.15;
    const char* base_path = nullptr;
    const char* cand_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
            char* end = nullptr;
            threshold = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || threshold < 0.0 ||
                threshold >= 1.0) {
                std::fprintf(stderr,
                             "benchdiff: --threshold wants a fraction in "
                             "[0, 1)\n");
                return 2;
            }
        } else if (base_path == nullptr) {
            base_path = argv[i];
        } else if (cand_path == nullptr) {
            cand_path = argv[i];
        } else {
            base_path = nullptr;
            break;
        }
    }
    if (base_path == nullptr || cand_path == nullptr) {
        std::fprintf(stderr,
                     "usage: benchdiff [--threshold <frac>] "
                     "<baseline.json> <candidate.json>\n");
        return 2;
    }

    JsonValue base;
    JsonValue cand;
    if (!loadReport(base_path, base) || !loadReport(cand_path, cand)) {
        return 2;
    }
    if (base.at("bench").string != cand.at("bench").string) {
        std::fprintf(stderr,
                     "benchdiff: benchmark mismatch: \"%s\" vs \"%s\"\n",
                     base.at("bench").string.c_str(),
                     cand.at("bench").string.c_str());
        return 2;
    }
    if (base.at("reps").number != cand.at("reps").number) {
        std::fprintf(stderr,
                     "benchdiff: rep count mismatch (%g vs %g) — medians "
                     "are not comparable\n",
                     base.at("reps").number, cand.at("reps").number);
        return 2;
    }

    const auto& base_metrics = base.at("metrics").object;
    const auto& cand_metrics = cand.at("metrics").object;
    std::printf("benchdiff: %s, threshold %.0f%%\n",
                base.at("bench").string.c_str(), 100.0 * threshold);

    int failures = 0;
    for (const auto& [name, base_v] : base_metrics) {
        if (!base_v.isNumber()) {
            continue;
        }
        auto it = cand_metrics.find(name);
        if (it == cand_metrics.end() || !it->second.isNumber()) {
            std::printf("  MISSING %-42s baseline %.6g\n", name.c_str(),
                        base_v.number);
            ++failures;
            continue;
        }
        double old_v = base_v.number;
        double new_v = it->second.number;
        if (endsWith(name, "_per_sec")) {
            double ratio = old_v > 0.0 ? new_v / old_v : 1.0;
            bool ok = new_v >= old_v * (1.0 - threshold);
            std::printf("  %-7s %-42s %.6g -> %.6g (%+.1f%%)\n",
                        ok ? "ok" : "FAIL", name.c_str(), old_v, new_v,
                        100.0 * (ratio - 1.0));
            if (!ok) {
                ++failures;
            }
        } else if (startsWith(name, "sim_")) {
            bool ok = old_v == new_v;
            if (ok) {
                std::printf("  %-7s %-42s %.6g (exact)\n", "ok",
                            name.c_str(), old_v);
            } else {
                std::printf("  %-7s %-42s %.17g != %.17g — simulated "
                            "result changed\n",
                            "FAIL", name.c_str(), old_v, new_v);
                ++failures;
            }
        } else {
            std::printf("  %-7s %-42s %.6g -> %.6g\n", "info",
                        name.c_str(), old_v, new_v);
        }
    }
    for (const auto& [name, v] : cand_metrics) {
        if (v.isNumber() && base_metrics.find(name) == base_metrics.end()) {
            std::printf("  info    %-42s (new metric) %.6g\n", name.c_str(),
                        v.number);
        }
    }

    if (failures > 0) {
        std::fprintf(stderr, "benchdiff: %d metric(s) failed\n", failures);
        return 1;
    }
    std::printf("benchdiff: pass\n");
    return 0;
}
