/**
 * @file
 * approxsvc — multi-tenant service simulator CLI. Runs a JobService
 * simulation from a compact spec string and prints a per-tenant
 * summary; --report-json writes the machine-readable
 * approxhadoop-service-report/1 document (validated by
 * `obscheck --service-report`, byte-identical across same-spec runs).
 *
 *   approxsvc "tenants=2,arrival=0.05,duration=600,seed=7"
 *   approxsvc "tenants=2,arrival=0.05,slo=150+0" --report-json out.json
 *
 * Exit codes: 0 ok, 1 simulation error, 2 bad usage/spec.
 */
#include <cstdio>
#include <exception>
#include <string>

#include "service/job_service.h"
#include "service/report.h"
#include "service/service_spec.h"

using namespace approxhadoop;

namespace {

void
usage()
{
    std::printf(
        "usage: approxsvc <spec> [--report-json FILE] [--quiet]\n"
        "\n"
        "runs a multi-tenant JobService simulation: seeded Poisson\n"
        "arrivals over the shared diurnal curve, priority admission,\n"
        "weighted fair-share slot arbitration, end-game speculation,\n"
        "and accuracy-for-latency degradation under queue pressure\n"
        "\n%s"
        "\n"
        "  --report-json FILE  write the service report "
        "(approxhadoop-service-report/1)\n"
        "  --quiet             suppress the per-tenant table\n"
        "\n"
        "exit codes: 0 ok, 1 simulation error, 2 bad usage/spec\n",
        service::serviceSpecHelp().c_str());
}

bool
writeFile(const std::string& path, const std::string& content)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "approxsvc: cannot write %s\n", path.c_str());
        return false;
    }
    bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
              content.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

void
printTable(const service::ServiceReport& report)
{
    std::printf("service: %llu jobs submitted, %llu completed, %llu "
                "failed; makespan %.1f s; peak queue %llu; %.1f Wh\n",
                static_cast<unsigned long long>(report.jobs_submitted),
                static_cast<unsigned long long>(report.jobs_completed),
                static_cast<unsigned long long>(report.jobs_failed),
                report.sim_makespan,
                static_cast<unsigned long long>(report.peak_queue_depth),
                report.energy_wh);
    std::printf("%-8s %4s %6s %5s %5s %9s %9s %9s %9s %8s %5s\n", "tenant",
                "prio", "weight", "jobs", "done", "p50(s)", "p99(s)",
                "ci-mean", "ci-max", "slot-s", "degr");
    for (const service::TenantReport& t : report.tenants) {
        std::printf(
            "%-8s %4u %6.1f %5llu %5llu %9.1f %9.1f %9.4f %9.4f %8.1f "
            "%5llu\n",
            t.name.c_str(), t.priority, t.weight,
            static_cast<unsigned long long>(t.jobs_submitted),
            static_cast<unsigned long long>(t.jobs_completed),
            t.p50_latency, t.p99_latency, t.mean_rel_ci_width,
            t.max_rel_ci_width, t.slot_seconds,
            static_cast<unsigned long long>(t.jobs_degraded));
        if (t.slo_seconds > 0.0) {
            std::printf("         slo %.1f s: %llu violation(s)\n",
                        t.slo_seconds,
                        static_cast<unsigned long long>(t.slo_violations));
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string spec_text;
    std::string report_path;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--report-json" && i + 1 < argc) {
            report_path = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "approxsvc: unknown flag '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else if (spec_text.empty()) {
            spec_text = arg;
        } else {
            std::fprintf(stderr, "approxsvc: more than one spec given\n");
            usage();
            return 2;
        }
    }
    if (spec_text.empty()) {
        usage();
        return 2;
    }

    service::ServiceSpec spec;
    try {
        spec = service::parseServiceSpec(spec_text);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "approxsvc: %s\n", e.what());
        return 2;
    }

    try {
        service::JobService svc(spec);
        service::ServiceReport report = svc.run();
        if (!quiet) {
            printTable(report);
        }
        if (!report_path.empty() &&
            !writeFile(report_path, report.toJson() + "\n")) {
            return 1;
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "approxsvc: %s\n", e.what());
        return 1;
    }
}
